#include "sim/sharded_simulator.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

#include "obs/metrics.h"
#include "obs/profile.h"

namespace roads::sim {

namespace {
constexpr Time kTimeMax = std::numeric_limits<Time>::max();

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// CPU time of the calling thread: the work/span accounting must not be
// distorted by time-slicing when the host grants fewer cores than
// shards (or by unrelated load). Falls back to wall time where no
// per-thread CPU clock exists.
std::int64_t thread_cpu_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
           ts.tv_nsec / 1'000;
  }
#endif
  return now_us();
}
}  // namespace

thread_local ShardedSimulator::ExecContext ShardedSimulator::tls_{};

ShardedSimulator::ShardedSimulator(Simulator& global, std::size_t shards)
    : global_(global) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  logs_.resize(shards);
  resolved_.resize(shards);
  cursors_.resize(shards, 0);
  busy_us_.resize(shards, 0);
  busy_cpu_us_.resize(shards, 0);
  global_.set_shared_seq(&next_seq_);
  for (auto& s : shards_) s->set_shared_seq(&next_seq_);
}

ShardedSimulator::~ShardedSimulator() {
  global_.set_shared_seq(nullptr);
}

void ShardedSimulator::set_lookahead(Time lookahead) {
  lookahead_ = std::max<Time>(lookahead, 1);
}

void ShardedSimulator::set_tree_branching(std::size_t k) {
  branching_ = std::max<std::size_t>(k, 2);
}

void ShardedSimulator::pin_node(NodeId node, std::size_t shard) {
  if (shard >= shards_.size()) {
    throw std::out_of_range("ShardedSimulator: pin to unknown shard");
  }
  if (node >= pins_.size()) pins_.resize(node + 1, kUnpinned);
  pins_[node] = static_cast<std::uint32_t>(shard);
}

std::size_t ShardedSimulator::shard_of(NodeId node) const {
  if (node < pins_.size() && pins_[node] != kUnpinned) return pins_[node];
  const std::size_t n_shards = shards_.size();
  if (n_shards == 1) return 0;
  const std::uint64_t k = branching_;
  std::uint64_t n = node;
  // Subtree partition over the implicit balanced k-ary tree the join
  // policy approximates (parent(i) = (i-1)/k): whole depth-1 branches
  // map to one shard each when shards <= k, so parent-child traffic —
  // the protocols' dominant flow — stays shard-local; beyond k shards
  // the depth-2 subtrees spread instead. The map is a locality
  // heuristic only: ANY node->shard function is correct.
  if (n_shards <= k) {
    while (n > k) n = (n - 1) / k;
    return n == 0 ? 0 : static_cast<std::size_t>((n - 1) % n_shards);
  }
  const std::uint64_t d2_first = k + 1;
  const std::uint64_t d2_last = k + k * k;
  if (n > d2_last) {
    while (n > d2_last) n = (n - 1) / k;
    return static_cast<std::size_t>((n - d2_first) % n_shards);
  }
  if (n >= d2_first) return static_cast<std::size_t>((n - d2_first) % n_shards);
  if (n >= 1) return static_cast<std::size_t>((n - 1) % n_shards);
  return 0;
}

Simulator& ShardedSimulator::current_engine() {
  if (tls_.owner == this && tls_.engine != nullptr) return *tls_.engine;
  return global_;
}

bool ShardedSimulator::in_window() const {
  return tls_.owner == this && tls_.log != nullptr;
}

ShardedSimulator::ExecContext ShardedSimulator::push_node_context(NodeId node) {
  const ExecContext prev = tls_;
  const std::size_t shard = shard_of(node);
  tls_ = ExecContext{this, shards_[shard].get(), shard, nullptr};
  return prev;
}

void ShardedSimulator::restore_context(const ExecContext& prev) {
  tls_ = prev;
}

void ShardedSimulator::schedule_on_node(NodeId node, Time when, EventFn fn) {
  const std::size_t target = shard_of(node);
  if (in_window()) {
    if (target == tls_.shard) {
      // Same shard: plain window-mode schedule (phase-1 or parked).
      tls_.engine->schedule_at(when, std::move(fn));
      return;
    }
    if (when < cur_window_end_) {
      // Would violate the lookahead contract — a cross-shard arrival
      // inside the very window that produced it cannot be ordered.
      throw std::logic_error(
          "ShardedSimulator: cross-shard delivery below lookahead");
    }
    auto& log = *tls_.log;
    ShardWindowLog::Record rec;
    rec.handler_time = tls_.engine->exec_when();
    rec.handler_seq = tls_.engine->exec_seq();
    rec.kind = ShardWindowLog::Kind::kCross;
    rec.when = when;
    rec.index = log.cross_fns.size();
    rec.target_shard = static_cast<std::uint32_t>(target);
    // Sender-side profiling tag, carried across the barrier so the
    // delivery is attributed like a same-shard one.
    rec.category = profiler_ != nullptr ? obs::prof_current_category() : 0;
    log.cross_fns.push_back(std::move(fn));
    log.records.push_back(rec);
    return;
  }
  // Outside windows every engine shares the seq counter, so a direct
  // insert on the owning shard is already in global order.
  shards_[target]->schedule_at(when, std::move(fn));
}

void ShardedSimulator::record_digest(
    const std::array<std::uint64_t, 6>& payload) {
  ShardWindowLog::Record rec;
  rec.handler_time = tls_.engine->exec_when();
  rec.handler_seq = tls_.engine->exec_seq();
  rec.kind = ShardWindowLog::Kind::kDigest;
  rec.payload = payload;
  tls_.log->records.push_back(rec);
}

bool ShardedSimulator::global_min_top(Time& when, std::uint64_t& seq,
                                      std::size_t& engine) {
  bool found = false;
  for (std::size_t i = 0; i < shards_.size() + 1; ++i) {
    Time w;
    std::uint64_t s;
    if (!engine_at(i)->top_key(w, s)) continue;
    if (!found || w < when || (w == when && s < seq)) {
      when = w;
      seq = s;
      engine = i;
      found = true;
    }
  }
  return found;
}

// One sequential-engine pop_one, across engines: discard tombstones in
// global order until a live event executes (true) or all heaps drain
// (false). Clocks sync to the event time BEFORE it runs so any engine's
// now() read from inside the handler (or from coordinator code after
// it) matches the single-threaded clock.
bool ShardedSimulator::micro_pop() {
  for (;;) {
    Time when;
    std::uint64_t seq;
    std::size_t index;
    if (!global_min_top(when, seq, index)) return false;
    Simulator* engine = engine_at(index);
    global_.advance_clock(when);
    for (auto& s : shards_) s->advance_clock(when);
    const ExecContext prev = tls_;
    tls_ = ExecContext{this, engine, index == 0 ? 0 : index - 1, nullptr};
    const int r = engine->step_top();
    tls_ = prev;
    if (r == 1) return true;
  }
}

void ShardedSimulator::run_shard_window(std::size_t shard, Time window_end) {
  const std::int64_t t0 = now_us();
  const std::int64_t c0 = thread_cpu_us();
  const ExecContext prev = tls_;
  tls_ = ExecContext{this, shards_[shard].get(), shard, &logs_[shard]};
  shards_[shard]->run_window(window_end, &logs_[shard]);
  tls_ = prev;
  busy_us_[shard] = now_us() - t0;
  busy_cpu_us_[shard] = thread_cpu_us() - c0;
}

std::size_t ShardedSimulator::run_parallel_window(Time window_end) {
  active_.clear();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Time w;
    std::uint64_t s;
    if (shards_[i]->top_key(w, s) && w < window_end) active_.push_back(i);
  }
  if (active_.empty()) return 0;
  cur_window_end_ = window_end;
  if (windows_counter_ != nullptr) windows_counter_->inc();
  ++par_.windows;
  const std::size_t before = stats().executed;
  // Utilization accounting baselines: each shard engine accumulates
  // its in-loop tick time into its ProfSink; the per-window busy is
  // the delta across this window, and wall - busy is barrier wait.
  std::uint64_t ticks0 = 0;
  if (profiler_ != nullptr) {
    for (const std::size_t i : active_) {
      work_ticks_snap_[i] = shards_[i]->profile_sink()->work_ticks;
    }
    ticks0 = obs::prof_ticks();
  }
  std::int64_t wall_us = 0;
  if (active_.size() == 1) {
    // One busy shard: run inline, skip the pool round-trip.
    run_shard_window(active_[0], window_end);
    inline_cpu_us_ += busy_cpu_us_[active_[0]];
    wall_us = busy_us_[active_[0]];
  } else {
    ensure_pool();
    const std::int64_t t0 = now_us();
    pool_->parallel_for(active_.size(), [&](std::size_t k) {
      run_shard_window(active_[k], window_end);
    });
    wall_us = now_us() - t0;
    if (barrier_wait_counter_ != nullptr) {
      for (const std::size_t i : active_) {
        const std::int64_t wait = wall_us - busy_us_[i];
        if (wait > 0) {
          barrier_wait_counter_->inc(static_cast<std::uint64_t>(wait));
        }
      }
    }
  }
  if (profiler_ != nullptr || !shard_busy_counters_.empty()) {
    std::fill(shard_active_.begin(), shard_active_.end(), std::uint8_t{0});
    for (const std::size_t i : active_) shard_active_[i] = 1;
  }
  if (profiler_ != nullptr) {
    const std::uint64_t wall_ticks = obs::prof_ticks() - ticks0;
    profiler_->note_window();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (shard_active_[i] != 0) {
        const std::uint64_t busy =
            shards_[i]->profile_sink()->work_ticks - work_ticks_snap_[i];
        profiler_->note_shard_window(
            i, busy, wall_ticks > busy ? wall_ticks - busy : 0);
      } else {
        profiler_->note_shard_idle(i, wall_ticks);
      }
    }
  }
  if (!shard_busy_counters_.empty()) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (shard_active_[i] != 0) {
        if (busy_us_[i] > 0) {
          shard_busy_counters_[i]->inc(static_cast<std::uint64_t>(busy_us_[i]));
        }
        const std::int64_t wait = wall_us - busy_us_[i];
        if (wait > 0) {
          shard_wait_counters_[i]->inc(static_cast<std::uint64_t>(wait));
        }
      } else if (wall_us > 0) {
        shard_idle_counters_[i]->inc(static_cast<std::uint64_t>(wall_us));
      }
    }
  }
  std::int64_t work = 0, span = 0;
  for (const std::size_t i : active_) {
    work += busy_cpu_us_[i];
    span = std::max(span, busy_cpu_us_[i]);
  }
  par_.window_work_us += static_cast<std::uint64_t>(work);
  par_.window_span_us += static_cast<std::uint64_t>(span);
  merge_window();
  return stats().executed - before;
}

void ShardedSimulator::merge_window() {
  for (const std::size_t i : active_) {
    std::size_t schedules = 0;
    for (const auto& r : logs_[i].records) {
      if (r.kind == ShardWindowLog::Kind::kSchedule) ++schedules;
    }
    resolved_[i].assign(schedules, 0);
    cursors_[i] = 0;
  }
  auto resolve = [this](std::size_t shard, std::uint64_t seq) {
    return (seq & Simulator::kPhase1Bit) != 0
               ? resolved_[shard][seq & ~Simulator::kPhase1Bit]
               : seq;
  };
  for (;;) {
    std::size_t best = kUnpinned;
    Time best_time = 0;
    std::uint64_t best_seq = 0;
    for (const std::size_t i : active_) {
      if (cursors_[i] >= logs_[i].records.size()) continue;
      const auto& r = logs_[i].records[cursors_[i]];
      // A creator record always precedes its creature in the same
      // shard's log, so a head record's handler key is resolvable.
      const std::uint64_t hseq = resolve(i, r.handler_seq);
      if (best == kUnpinned || r.handler_time < best_time ||
          (r.handler_time == best_time && hseq < best_seq)) {
        best = i;
        best_time = r.handler_time;
        best_seq = hseq;
      }
    }
    if (best == kUnpinned) break;
    auto& log = logs_[best];
    const auto& r = log.records[cursors_[best]++];
    switch (r.kind) {
      case ShardWindowLog::Kind::kSchedule: {
        const std::uint64_t vseq = next_seq_++;
        resolved_[best][r.index] = vseq;
        if (r.parked) {
          // false = cancelled while parked; the seq stays consumed,
          // exactly as the sequential run would have spent it.
          shards_[best]->reinsert_parked(r.slot, r.generation, r.when, vseq);
        }
        break;
      }
      case ShardWindowLog::Kind::kCross: {
        const std::uint64_t vseq = next_seq_++;
        shards_[r.target_shard]->insert_with_seq(
            r.when, vseq, std::move(log.cross_fns[r.index]), r.category);
        if (cross_sends_counter_ != nullptr) cross_sends_counter_->inc();
        if (!shard_cross_counters_.empty()) {
          shard_cross_counters_[best]->inc();
        }
        break;
      }
      case ShardWindowLog::Kind::kDigest: {
        if (digest_sink_ != nullptr) {
          for (const std::uint64_t w : r.payload) digest_sink_->add(w);
        }
        break;
      }
    }
  }
  for (const std::size_t i : active_) logs_[i].clear();
}

void ShardedSimulator::ensure_pool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<util::ThreadPool>(shards_.size());
  }
}

std::size_t ShardedSimulator::run_until(Time deadline) {
  const std::size_t before = stats().executed;
  // Coordinator CPU over the whole drive, minus window work that ran
  // inline on this thread (counted under work/span instead), is the
  // serial leg of the work/span decomposition: frontier scans, merges
  // and micro-steps that no extra core can help with.
  const std::int64_t c0 = thread_cpu_us();
  const std::int64_t inline0 = inline_cpu_us_;
  const ParallelStats snap = par_;
  for (;;) {
    Time t;
    std::uint64_t s;
    std::size_t index;
    if (!global_min_top(t, s, index)) break;
    if (t > deadline) break;
    Time tg = kTimeMax;
    std::uint64_t sg;
    const bool has_global = global_.top_key(tg, sg);
    if (coin_mode_ || (has_global && tg <= t)) {
      // Per-message fault coins need send-time RNG draws in global
      // order, and a due global event (fault transition) mutates state
      // every shard reads — both degrade to exact micro-stepping.
      micro_pop();
      continue;
    }
    const Time window_end =
        std::min(std::min(t + lookahead_, tg), deadline + 1);
    if (run_parallel_window(window_end) == 0) {
      // Only tombstones below the window bound: they were discarded,
      // loop around for a fresh frontier.
      continue;
    }
  }
  global_.advance_clock(deadline);
  for (auto& sh : shards_) sh->advance_clock(deadline);
  const std::int64_t serial =
      (thread_cpu_us() - c0) - (inline_cpu_us_ - inline0);
  if (serial > 0) par_.serial_us += static_cast<std::uint64_t>(serial);
  if (work_counter_ != nullptr) {
    work_counter_->inc(par_.window_work_us - snap.window_work_us);
    span_counter_->inc(par_.window_span_us - snap.window_span_us);
    serial_counter_->inc(par_.serial_us - snap.serial_us);
  }
  return stats().executed - before;
}

std::size_t ShardedSimulator::run_steps(std::size_t limit) {
  const std::int64_t c0 = thread_cpu_us();
  std::size_t executed = 0;
  while (executed < limit && micro_pop()) ++executed;
  const std::int64_t serial = thread_cpu_us() - c0;
  if (serial > 0) par_.serial_us += static_cast<std::uint64_t>(serial);
  return executed;
}

std::size_t ShardedSimulator::pending_events() const {
  std::size_t total = global_.pending_events();
  for (const auto& s : shards_) total += s->pending_events();
  return total;
}

Simulator::Stats ShardedSimulator::stats() const {
  Simulator::Stats sum = global_.stats();
  for (const auto& s : shards_) {
    const auto& st = s->stats();
    sum.scheduled += st.scheduled;
    sum.executed += st.executed;
    sum.cancelled += st.cancelled;
    sum.inline_events += st.inline_events;
    sum.spilled_events += st.spilled_events;
    sum.max_depth += st.max_depth;
  }
  return sum;
}

std::size_t ShardedSimulator::take_window_max_depth() {
  std::size_t total = global_.take_window_max_depth();
  for (auto& s : shards_) total += s->take_window_max_depth();
  return total;
}

void ShardedSimulator::bind_metrics(obs::MetricsRegistry& registry) {
  windows_counter_ = &registry.counter("sim.shard.windows");
  barrier_wait_counter_ = &registry.counter("sim.shard.barrier_wait_us");
  cross_sends_counter_ = &registry.counter("sim.shard.cross_sends");
  work_counter_ = &registry.counter("sim.shard.window_work_us");
  span_counter_ = &registry.counter("sim.shard.window_span_us");
  serial_counter_ = &registry.counter("sim.shard.serial_us");
  registry.set_help("sim.shard.windows", "Parallel windows executed");
  registry.set_help("sim.shard.barrier_wait_us",
                    "Wall time shards spent waiting at window barriers");
  registry.set_help("sim.shard.cross_sends",
                    "Cross-shard deliveries exchanged at barriers");
  shard_cross_counters_.clear();
  shard_busy_counters_.clear();
  shard_idle_counters_.clear();
  shard_wait_counters_.clear();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::string prefix = "sim.shard." + std::to_string(i);
    shard_cross_counters_.push_back(&registry.counter(prefix + ".cross_sends"));
    shard_busy_counters_.push_back(&registry.counter(prefix + ".busy_us"));
    shard_idle_counters_.push_back(&registry.counter(prefix + ".idle_us"));
    shard_wait_counters_.push_back(
        &registry.counter(prefix + ".barrier_wait_us"));
    registry.set_help(prefix + ".busy_us",
                      "Wall time this shard spent executing window events");
    registry.set_help(prefix + ".idle_us",
                      "Wall time of windows this shard had no events in");
    registry.set_help(prefix + ".barrier_wait_us",
                      "Wall time this shard waited on slower window peers");
  }
  if (shard_active_.size() != shards_.size()) {
    shard_active_.assign(shards_.size(), 0);
  }
}

void ShardedSimulator::attach_profiler(obs::Profiler* profiler) {
  profiler_ = profiler;
  if (profiler == nullptr) {
    global_.set_profile_sink(nullptr);
    for (auto& s : shards_) s->set_profile_sink(nullptr);
    return;
  }
  // Engine i writes sink i exclusively: the global engine runs on the
  // coordinator thread, each shard engine on at most one pool thread
  // per window — no sink is ever shared across concurrent writers.
  global_.set_profile_sink(&profiler->sink(0));
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->set_profile_sink(&profiler->sink(i + 1));
  }
  work_ticks_snap_.assign(shards_.size(), 0);
  if (shard_active_.size() != shards_.size()) {
    shard_active_.assign(shards_.size(), 0);
  }
}

}  // namespace roads::sim
