// Simulated message network.
//
// Wraps the Simulator and DelaySpace into a point-to-point message
// service: send(from, to, bytes, channel, deliver) schedules `deliver`
// after the pairwise latency and accounts the bytes against a traffic
// channel. The per-channel meters are exactly the paper's metrics:
// update overhead (kUpdate), query message overhead (kQuery) and
// summary-maintenance overhead (kMaintenance). Nodes can be marked down
// for failure injection; messages to or from a down node vanish, as do
// randomly dropped messages when a loss rate is configured.
//
// Fault injection beyond a uniform loss rate comes from a FaultPlan
// (see sim/fault.h): per-node and per-link loss, duplication, bounded
// reordering jitter, scheduled partitions and crash/restart windows.
// Messages killed at send time (loss coin, partition, dead sender) are
// metered as drops and charged to NO channel — the sender never put
// them on the wire as far as the overhead metrics are concerned —
// while messages whose receiver dies in flight were genuinely sent and
// keep their channel charge. Every send/drop/deliver decision folds
// into a running FNV-1a event digest, so two runs of the same seeded
// schedule can be compared bit-for-bit.
//
// Metering is backed by the shared obs::MetricsRegistry: each channel
// owns a pair of "net.<channel>.messages"/".bytes" counters, so every
// consumer of the registry (exporters, experiment snapshots) sees the
// same numbers meter() reports. The caller may supply the registry
// (Federation shares one across subsystems) or let the network own a
// private one. An optional obs::TraceBuffer receives structured
// send/deliver/drop events.
//
// Causal tracing: the network carries a current obs::TraceContext —
// the span whatever handler is presently executing belongs to. Every
// traced message allocates a transit span as a child of that context
// (or roots a fresh tree when none is active), and the delivery
// callback runs with the message's context installed, so sends made
// inside a handler automatically chain into the same tree across any
// number of hops. This is plain (non-atomic) state because each
// Simulator run is single-threaded; parallel experiment repetitions
// own separate Network instances. Handlers that defer work through
// raw Simulator::schedule_after must capture trace_context() at
// delivery and reinstall it (ScopedTraceContext) inside the closure,
// or the deferred sends root new trees.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/delay_space.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/unique_function.h"

namespace roads::sim {

class ShardedSimulator;

enum class Channel : std::uint8_t {
  kControl = 0,      // join / topology negotiation
  kUpdate = 1,       // record exports, summary aggregation & replication
  kQuery = 2,        // query forwarding and redirects
  kMaintenance = 3,  // heartbeats, departure notices
  kResult = 4,       // record payloads returned to clients
};
constexpr std::size_t kChannelCount = 5;

const char* to_string(Channel channel);

/// Delivery callback. Move-only: the network moves it hop to hop
/// (send -> transit -> delivery event) without ever copying the
/// captured state. Inline capacity 64 covers the protocol layers'
/// reply closures (shared_ptr client + target vector + counters);
/// larger captures spill to the util::spill pool. A message duplicated
/// by a FaultPlan invokes the SAME closure twice (the state is owned
/// once) — handlers must tolerate re-invocation, which duplication
/// already demands of them.
using DeliverFn = util::UniqueFunction<void(), 64>;

/// Snapshot of one channel's traffic counters.
struct ChannelMeter {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Network {
 public:
  /// Called when a fault-plan crash window flips a node down (up=false)
  /// or back up (up=true); lets the protocol layer fail/restart the
  /// corresponding server object.
  using NodeTransitionHandler = util::UniqueFunction<void(NodeId, bool up)>;

  /// `metrics` is the registry the channel counters live in; nullptr
  /// makes the network own a private registry. `trace` enables
  /// per-message structured events (nullptr = no tracing).
  Network(Simulator& simulator, DelaySpace& delay_space, util::Rng rng,
          obs::MetricsRegistry* metrics = nullptr,
          obs::TraceBuffer* trace = nullptr);

  /// The engine of the current execution context: the attached sharded
  /// coordinator's current engine when sharding is on (so handlers'
  /// now()/schedule_after land on their own shard), else the wrapped
  /// sequential Simulator.
  Simulator& simulator();
  const DelaySpace& delay_space() const { return space_; }

  /// Routes scheduling, clock reads, delivery placement and in-window
  /// digest folds through `sharded` (see sim/sharded_simulator.h).
  /// Tracing must be off: delivery contexts would race across shard
  /// threads. nullptr detaches.
  void attach_sharded(ShardedSimulator* sharded);

  /// The registry backing the channel meters (owned or shared);
  /// subsystems riding this network register their instruments here.
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  obs::TraceBuffer* trace() { return trace_; }
  /// Throws std::logic_error when a sharded coordinator is attached:
  /// delivery closures would install trace contexts concurrently across
  /// shard threads (the same contract attach_sharded enforces from the
  /// other side). Use handler profiling (obs/profile.h) under sharding.
  void set_trace(obs::TraceBuffer* trace);

  /// The causal context of the handler currently executing (inactive
  /// outside any traced delivery/span). Prefer ScopedTraceContext /
  /// TraceSpan over calling set_trace_context directly.
  obs::TraceContext trace_context() const { return trace_ctx_; }
  /// No-op when tracing is off: context installs happen inside delivery
  /// closures, which run concurrently across shard threads in sharded
  /// mode — with tracing disabled nothing may write this plain member.
  void set_trace_context(const obs::TraceContext& ctx) {
    if (trace_ != nullptr) trace_ctx_ = ctx;
  }

  /// Opens an explicit span as a child of the current context (a fresh
  /// root when none is active), emits kSpanBegin and returns the
  /// context child spans and sends should run under. Inactive context
  /// returned when tracing is off. `label` is the span taxonomy name
  /// ("proc", "service", or a root-cause name like "summary_refresh").
  obs::TraceContext begin_span(NodeId node, const char* label);
  obs::TraceContext begin_span_under(const obs::TraceContext& parent,
                                     NodeId node, const char* label);
  /// Closes a span opened by begin_span* (no-op for inactive contexts).
  void end_span(const obs::TraceContext& ctx);

  /// One-way latency from a to b (delegates to the delay space).
  Time latency(NodeId a, NodeId b) const { return space_.latency(a, b); }

  /// Sends a message: accounts bytes on `channel` and schedules
  /// `deliver` at now + latency(from, to). Messages killed before the
  /// wire (dead sender, loss coin, partition) are metered as drops and
  /// never charged to the channel; a receiver that dies in flight drops
  /// the message with the bytes already spent.
  void send(NodeId from, NodeId to, std::uint64_t bytes, Channel channel,
            DeliverFn deliver);

  /// Accounts a batch of `messages` logical messages totalling `bytes`
  /// that travel together (e.g. a bulk record registration); delivered
  /// as one event. Loss applies to the whole batch.
  void send_bulk(NodeId from, NodeId to, std::uint64_t messages,
                 std::uint64_t bytes, Channel channel, DeliverFn deliver);

  bool node_up(NodeId node) const;
  void set_node_up(NodeId node, bool up);

  /// Probability in [0,1] that any message is silently lost. Alias for
  /// setting FaultPlan::loss_rate on the active plan.
  void set_loss_rate(double rate) { plan_.loss_rate = rate; }

  /// Installs `plan`: loss/dup/reorder rates take effect immediately,
  /// partition and crash windows are scheduled on the simulator (times
  /// already in the past fire at now). Replaces any previous plan —
  /// applying a default-constructed FaultPlan heals everything except
  /// nodes a previous plan crashed without a restart time. All
  /// randomness derives from the network RNG, so equal seeds replay the
  /// exact same fault sequence.
  void apply_fault_plan(const FaultPlan& plan);
  const FaultPlan& fault_plan() const { return plan_; }

  /// True while an active partition window separates a and b.
  bool partitioned(NodeId a, NodeId b) const;

  /// Installs the crash/restart callback (see NodeTransitionHandler).
  void set_node_transition_handler(NodeTransitionHandler handler) {
    transition_ = std::move(handler);
  }

  ChannelMeter meter(Channel channel) const;
  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;
  /// Messages that never reached their receiver (down nodes, loss,
  /// partitions).
  std::uint64_t dropped_messages() const { return dropped_->value(); }
  /// Zeroes the channel counters (experiment drivers meter deltas over
  /// one refresh window). The event digest is left untouched.
  void reset_meters();

  /// Running FNV-1a digest over every (time, from, to, bytes, channel,
  /// outcome) the network decided — equal seeds and schedules produce
  /// equal digests, which is the chaos tests' replay check.
  std::uint64_t event_digest() const { return digest_.value(); }

 private:
  enum class EventOutcome : std::uint64_t {
    kSend = 1,
    kDeliver = 2,
    kDropSend = 3,
    kDropDeliver = 4,
    kDuplicate = 5,
  };

  void trace_message(obs::TraceKind kind, NodeId from, NodeId to,
                     std::uint64_t bytes, Channel channel,
                     std::uint64_t span = 0, std::uint64_t trace = 0,
                     std::uint64_t parent = 0);
  void digest_event(EventOutcome outcome, NodeId from, NodeId to,
                    std::uint64_t bytes, Channel channel);
  /// Combined send-time loss probability for this (from, to) pair.
  double loss_probability(NodeId from, NodeId to) const;
  /// Allocates a transit span under the current context and emits the
  /// kSend event; returns the context the delivery should run under.
  obs::TraceContext trace_send(NodeId from, NodeId to, std::uint64_t bytes,
                               Channel channel);
  void schedule_delivery(NodeId from, NodeId to, std::uint64_t bytes,
                         Channel channel, Time delay,
                         obs::TraceContext delivery_ctx, DeliverFn deliver);
  void set_partition_active(std::size_t index, bool active);
  /// Current-context engine (same as the public simulator()).
  Simulator& cur();

  Simulator& sim_;
  ShardedSimulator* sharded_ = nullptr;
  DelaySpace& space_;
  util::Rng rng_;
  FaultPlan plan_;
  std::vector<double> node_loss_;  // indexed by NodeId, 0 = none
  std::unordered_map<std::uint64_t, double> link_loss_;  // (from<<32)|to
  struct ActivePartition {
    std::vector<bool> member;  // indexed by NodeId
    bool active = false;
  };
  std::vector<ActivePartition> partitions_;
  std::uint64_t plan_generation_ = 0;  // invalidates scheduled windows
  NodeTransitionHandler transition_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::TraceBuffer* trace_;
  std::array<obs::Counter*, kChannelCount> message_counters_{};
  std::array<obs::Counter*, kChannelCount> byte_counters_{};
  obs::Counter* dropped_;
  obs::Counter* fault_dropped_;
  obs::Counter* fault_duplicated_;
  obs::Counter* fault_reordered_;
  obs::Counter* fault_partitioned_;
  util::Fnv1a digest_;
  std::vector<bool> down_;  // indexed by NodeId; default all up
  obs::TraceContext trace_ctx_;
};

/// RAII: installs `ctx` as the network's current trace context and
/// restores the previous one on scope exit. Used by the delivery path
/// and by handlers that re-enter a captured context from a deferred
/// closure.
class ScopedTraceContext {
 public:
  ScopedTraceContext(Network& net, const obs::TraceContext& ctx)
      : net_(net), prev_(net.trace_context()) {
    net_.set_trace_context(ctx);
  }
  ~ScopedTraceContext() { net_.set_trace_context(prev_); }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  Network& net_;
  obs::TraceContext prev_;
};

/// RAII span: begins a span (child of the current context, or a fresh
/// root when none is active — e.g. a timer-driven refresh wave),
/// installs its context, and ends + restores on destruction. A no-op
/// when tracing is off.
class TraceSpan {
 public:
  TraceSpan(Network& net, NodeId node, const char* label)
      : net_(net), prev_(net.trace_context()),
        ctx_(net.begin_span(node, label)) {
    if (ctx_.span != 0) net_.set_trace_context(ctx_);
  }
  ~TraceSpan() {
    if (ctx_.span != 0) {
      net_.end_span(ctx_);
      net_.set_trace_context(prev_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  const obs::TraceContext& context() const { return ctx_; }

 private:
  Network& net_;
  obs::TraceContext prev_;
  obs::TraceContext ctx_;
};

}  // namespace roads::sim
