// Simulated message network.
//
// Wraps the Simulator and DelaySpace into a point-to-point message
// service: send(from, to, bytes, channel, deliver) schedules `deliver`
// after the pairwise latency and accounts the bytes against a traffic
// channel. The per-channel meters are exactly the paper's metrics:
// update overhead (kUpdate), query message overhead (kQuery) and
// summary-maintenance overhead (kMaintenance). Nodes can be marked down
// for failure injection; messages to or from a down node vanish, as do
// randomly dropped messages when a loss rate is configured.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/delay_space.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/rng.h"

namespace roads::sim {

enum class Channel : std::uint8_t {
  kControl = 0,      // join / topology negotiation
  kUpdate = 1,       // record exports, summary aggregation & replication
  kQuery = 2,        // query forwarding and redirects
  kMaintenance = 3,  // heartbeats, departure notices
  kResult = 4,       // record payloads returned to clients
};
constexpr std::size_t kChannelCount = 5;

const char* to_string(Channel channel);

struct ChannelMeter {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Network {
 public:
  Network(Simulator& simulator, DelaySpace& delay_space, util::Rng rng);

  Simulator& simulator() { return sim_; }
  const DelaySpace& delay_space() const { return space_; }

  /// One-way latency from a to b (delegates to the delay space).
  Time latency(NodeId a, NodeId b) const { return space_.latency(a, b); }

  /// Sends a message: accounts bytes on `channel` and schedules
  /// `deliver` at now + latency(from, to). Dropped (with the bytes still
  /// spent by the sender) when the sender is down at send time, the
  /// receiver is down at delivery time, or the loss coin fires.
  void send(NodeId from, NodeId to, std::uint64_t bytes, Channel channel,
            std::function<void()> deliver);

  /// Accounts a batch of `messages` logical messages totalling `bytes`
  /// that travel together (e.g. a bulk record registration); delivered
  /// as one event. Loss applies to the whole batch.
  void send_bulk(NodeId from, NodeId to, std::uint64_t messages,
                 std::uint64_t bytes, Channel channel,
                 std::function<void()> deliver);

  bool node_up(NodeId node) const;
  void set_node_up(NodeId node, bool up);

  /// Probability in [0,1] that any message is silently lost.
  void set_loss_rate(double rate) { loss_rate_ = rate; }

  const ChannelMeter& meter(Channel channel) const;
  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;
  void reset_meters();

 private:
  Simulator& sim_;
  DelaySpace& space_;
  util::Rng rng_;
  double loss_rate_ = 0.0;
  std::array<ChannelMeter, kChannelCount> meters_{};
  std::vector<bool> down_;  // indexed by NodeId; default all up
};

}  // namespace roads::sim
