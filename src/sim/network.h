// Simulated message network.
//
// Wraps the Simulator and DelaySpace into a point-to-point message
// service: send(from, to, bytes, channel, deliver) schedules `deliver`
// after the pairwise latency and accounts the bytes against a traffic
// channel. The per-channel meters are exactly the paper's metrics:
// update overhead (kUpdate), query message overhead (kQuery) and
// summary-maintenance overhead (kMaintenance). Nodes can be marked down
// for failure injection; messages to or from a down node vanish, as do
// randomly dropped messages when a loss rate is configured.
//
// Metering is backed by the shared obs::MetricsRegistry: each channel
// owns a pair of "net.<channel>.messages"/".bytes" counters, so every
// consumer of the registry (exporters, experiment snapshots) sees the
// same numbers meter() reports. The caller may supply the registry
// (Federation shares one across subsystems) or let the network own a
// private one. An optional obs::TraceBuffer receives structured
// send/deliver/drop events.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/delay_space.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/rng.h"

namespace roads::sim {

enum class Channel : std::uint8_t {
  kControl = 0,      // join / topology negotiation
  kUpdate = 1,       // record exports, summary aggregation & replication
  kQuery = 2,        // query forwarding and redirects
  kMaintenance = 3,  // heartbeats, departure notices
  kResult = 4,       // record payloads returned to clients
};
constexpr std::size_t kChannelCount = 5;

const char* to_string(Channel channel);

/// Snapshot of one channel's traffic counters.
struct ChannelMeter {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Network {
 public:
  /// `metrics` is the registry the channel counters live in; nullptr
  /// makes the network own a private registry. `trace` enables
  /// per-message structured events (nullptr = no tracing).
  Network(Simulator& simulator, DelaySpace& delay_space, util::Rng rng,
          obs::MetricsRegistry* metrics = nullptr,
          obs::TraceBuffer* trace = nullptr);

  Simulator& simulator() { return sim_; }
  const DelaySpace& delay_space() const { return space_; }

  /// The registry backing the channel meters (owned or shared);
  /// subsystems riding this network register their instruments here.
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  obs::TraceBuffer* trace() { return trace_; }
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }

  /// One-way latency from a to b (delegates to the delay space).
  Time latency(NodeId a, NodeId b) const { return space_.latency(a, b); }

  /// Sends a message: accounts bytes on `channel` and schedules
  /// `deliver` at now + latency(from, to). Dropped (with the bytes still
  /// spent by the sender) when the sender is down at send time, the
  /// receiver is down at delivery time, or the loss coin fires.
  void send(NodeId from, NodeId to, std::uint64_t bytes, Channel channel,
            std::function<void()> deliver);

  /// Accounts a batch of `messages` logical messages totalling `bytes`
  /// that travel together (e.g. a bulk record registration); delivered
  /// as one event. Loss applies to the whole batch.
  void send_bulk(NodeId from, NodeId to, std::uint64_t messages,
                 std::uint64_t bytes, Channel channel,
                 std::function<void()> deliver);

  bool node_up(NodeId node) const;
  void set_node_up(NodeId node, bool up);

  /// Probability in [0,1] that any message is silently lost.
  void set_loss_rate(double rate) { loss_rate_ = rate; }

  ChannelMeter meter(Channel channel) const;
  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;
  /// Messages that never reached their receiver (down nodes, loss).
  std::uint64_t dropped_messages() const { return dropped_->value(); }
  /// Zeroes the channel counters (experiment drivers meter deltas over
  /// one refresh window).
  void reset_meters();

 private:
  void trace_message(obs::TraceKind kind, NodeId from, NodeId to,
                     std::uint64_t bytes, Channel channel);

  Simulator& sim_;
  DelaySpace& space_;
  util::Rng rng_;
  double loss_rate_ = 0.0;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::TraceBuffer* trace_;
  std::array<obs::Counter*, kChannelCount> message_counters_{};
  std::array<obs::Counter*, kChannelCount> byte_counters_{};
  obs::Counter* dropped_;
  std::vector<bool> down_;  // indexed by NodeId; default all up
};

}  // namespace roads::sim
