#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "sim/window_log.h"

namespace roads::sim {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot_index = free_head_;
    free_head_ = slot_at(slot_index).next_free;
    return slot_index;
  }
  if (slot_count_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return static_cast<std::uint32_t>(slot_count_++);
}

void Simulator::free_slot(std::uint32_t slot_index) {
  Slot& slot = slot_at(slot_index);
  slot.active = false;
  ++slot.generation;  // invalidates the heap tombstone and any live id
  slot.next_free = free_head_;
  free_head_ = slot_index;
}

void Simulator::note_depth() {
  if (live_ > stats_.max_depth) {
    stats_.max_depth = live_;
    if (max_depth_gauge_ != nullptr) {
      max_depth_gauge_->set(static_cast<double>(live_));
    }
  }
  if (live_ > window_max_depth_) window_max_depth_ = live_;
  if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<double>(live_));
}

std::size_t Simulator::take_window_max_depth() {
  const std::size_t high = window_max_depth_;
  window_max_depth_ = live_;
  return high;
}

// Hole-based sifts: the displaced element is kept in registers while
// the hole walks the tree, so each level costs one key+ref copy
// instead of a three-way swap.
void Simulator::heap_push(HeapKey key, HeapRef ref) {
  std::size_t i = heap_keys_.size();
  heap_keys_.push_back(key);
  heap_refs_.push_back(ref);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(key, heap_keys_[parent])) break;
    heap_keys_[i] = heap_keys_[parent];
    heap_refs_[i] = heap_refs_[parent];
    i = parent;
  }
  heap_keys_[i] = key;
  heap_refs_[i] = ref;
}

void Simulator::heap_pop_top() {
  const HeapKey key = heap_keys_.back();
  const HeapRef ref = heap_refs_.back();
  heap_keys_.pop_back();
  heap_refs_.pop_back();
  const std::size_t n = heap_keys_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child =
        first_child + kArity < n ? first_child + kArity : n;
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_keys_[c], heap_keys_[best])) best = c;
    }
    if (!before(heap_keys_[best], key)) break;
    heap_keys_[i] = heap_keys_[best];
    heap_refs_[i] = heap_refs_[best];
    i = best;
  }
  heap_keys_[i] = key;
  heap_refs_[i] = ref;
}

EventId Simulator::schedule_at(Time when, EventFn fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator: scheduling into the past");
  }
  const bool stored_inline = fn.is_inline();
  const std::uint32_t slot_index = acquire_slot();
  Slot& slot = slot_at(slot_index);
  slot.fn = std::move(fn);
  slot.active = true;
  // Category resolution (profiled runs only): the explicit scope tag
  // if one is active, else inherit from the executing handler.
  slot.category = prof_ != nullptr ? obs::prof_current_category() : 0;
  const std::uint32_t gen = slot.generation;
  if (window_log_ != nullptr) {
    // Parallel window: the global seq this event would have drawn
    // depends on the cross-shard interleaving, so it is assigned at the
    // barrier merge from the log record below. Until then the event is
    // either heaped under a phase-1 key (target inside this window —
    // only zero-/sub-lookahead local delays reach here) or parked with
    // its slot held, so cancel() via the returned id works as usual.
    const std::uint64_t local = window_local_seq_++;
    const bool parked = when >= window_end_;
    if (!parked) {
      heap_push(HeapKey{when, kPhase1Bit | local}, HeapRef{slot_index, gen});
    }
    ShardWindowLog::Record rec;
    rec.handler_time = exec_when_;
    rec.handler_seq = exec_seq_;
    rec.kind = ShardWindowLog::Kind::kSchedule;
    rec.when = when;
    rec.slot = slot_index;
    rec.generation = gen;
    rec.index = local;
    rec.parked = parked;
    window_log_->records.push_back(rec);
  } else {
    const std::uint64_t seq =
        shared_seq_ != nullptr ? (*shared_seq_)++ : next_seq_++;
    heap_push(HeapKey{when, seq}, HeapRef{slot_index, gen});
  }
  ++live_;
  ++stats_.scheduled;
  if (stored_inline) {
    ++stats_.inline_events;
  } else {
    ++stats_.spilled_events;
  }
  if (scheduled_counter_ != nullptr) {
    scheduled_counter_->inc();
    (stored_inline ? inline_counter_ : spilled_counter_)->inc();
  }
  note_depth();
  return (static_cast<EventId>(gen) << 32) | slot_index;
}

EventId Simulator::schedule_after(Time delay, EventFn fn) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  const std::uint32_t slot_index = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot_index >= slot_count_) return;
  Slot& slot = slot_at(slot_index);
  if (!slot.active || slot.generation != gen) return;  // ran or cancelled
  slot.fn = nullptr;  // release the closure (and any spill block) now
  free_slot(slot_index);
  --live_;
  ++stats_.cancelled;
  if (cancelled_counter_ != nullptr) cancelled_counter_->inc();
  if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<double>(live_));
  // The heap entry stays behind as a tombstone; pop_one() discards it
  // when it reaches the top (generation mismatch).
}

// Retire the id before invoking so a handler cancelling itself is
// a no-op, but keep the slot OFF the free list until the closure
// returns: chunk addresses are stable, so the closure runs in
// place (no move) while reschedules grow the slab around it.
void Simulator::execute_ref(HeapKey key, HeapRef ref) {
  Slot& slot = slot_at(ref.slot);
  slot.active = false;
  ++slot.generation;
  --live_;
  now_ = key.when;
  exec_when_ = key.when;
  exec_seq_ = key.seq;
  ++stats_.executed;
  if (executed_counter_ != nullptr) executed_counter_->inc();
  if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<double>(live_));
  if (prof_ != nullptr) {
    // Exact event count; ticks are stride-sampled (see ProfSink): the
    // clock is read on the first event after loop entry and every
    // kSampleStride-th event after that, and the elapsed block is
    // charged to the category observed when the block opened. The
    // drive loops close the final block (prof_close), so attribution
    // still covers ~all of the loop's work.
    prof_->count_event(slot.category);
    if (!prof_->pending) {
      prof_->pending_t0 = obs::prof_ticks();
      prof_->pending_cat = slot.category;
      prof_->pending = true;
    } else if ((++prof_->sample_ctr & (obs::ProfSink::kSampleStride - 1)) ==
               0) {
      const std::uint64_t t = obs::prof_ticks();
      prof_->add_ticks(prof_->pending_cat, t - prof_->pending_t0);
      prof_->pending_cat = slot.category;
      prof_->pending_t0 = t;
    }
    // Untagged schedules made by the closure inherit its category. The
    // drive loops clear the tag on exit; between events inside a loop
    // nothing schedules, so per-event clearing would be wasted stores.
    obs::detail::t_exec_category = slot.category;
  }
  slot.fn();
  slot.fn = nullptr;
  slot.next_free = free_head_;
  free_head_ = ref.slot;
}

void Simulator::prof_close(std::uint64_t loop_t0) {
  const std::uint64_t t = obs::prof_ticks();
  if (prof_->pending) {
    prof_->add_ticks(prof_->pending_cat, t - prof_->pending_t0);
    prof_->pending = false;
  }
  prof_->work_ticks += t - loop_t0;
  obs::detail::t_exec_category = 0;
}

bool Simulator::pop_one() {
  while (!heap_keys_.empty()) {
    const HeapKey top = heap_keys_.front();
    const HeapRef top_ref = heap_refs_.front();
    heap_pop_top();
    Slot& slot = slot_at(top_ref.slot);
    if (!slot.active || slot.generation != top_ref.gen) {
      continue;  // tombstone
    }
    execute_ref(top, top_ref);
    return true;
  }
  return false;
}

int Simulator::step_top() {
  if (heap_keys_.empty()) return -1;
  const HeapKey top = heap_keys_.front();
  const HeapRef top_ref = heap_refs_.front();
  heap_pop_top();
  Slot& slot = slot_at(top_ref.slot);
  if (!slot.active || slot.generation != top_ref.gen) return 0;  // tombstone
  execute_ref(top, top_ref);
  if (prof_ != nullptr && window_log_ == nullptr) {
    // Micro-stepping (the sharded coordinator popping one event at a
    // time): close the measurement per event so coordinator work
    // between steps is never charged to a handler. Inside run_window
    // the loop keeps the measurement pending instead.
    const std::uint64_t t = obs::prof_ticks();
    prof_->add_ticks(prof_->pending_cat, t - prof_->pending_t0);
    prof_->work_ticks += t - prof_->pending_t0;
    prof_->pending = false;
    obs::detail::t_exec_category = 0;
  }
  return 1;
}

std::size_t Simulator::run_window(Time window_end, ShardWindowLog* log) {
  window_log_ = log;
  window_end_ = window_end;
  window_local_seq_ = 0;
  const std::uint64_t t0 = prof_ != nullptr ? obs::prof_ticks() : 0;
  std::size_t executed = 0;
  // step_top (not pop_one) so a tombstone never drags execution past
  // the window bound; the condition is re-checked after every pop.
  while (!heap_keys_.empty() && heap_keys_.front().when < window_end) {
    if (step_top() == 1) ++executed;
  }
  if (prof_ != nullptr) prof_close(t0);
  window_log_ = nullptr;
  return executed;
}

void Simulator::insert_with_seq(Time when, std::uint64_t seq, EventFn fn,
                                std::uint8_t category) {
  const bool stored_inline = fn.is_inline();
  const std::uint32_t slot_index = acquire_slot();
  Slot& slot = slot_at(slot_index);
  slot.fn = std::move(fn);
  slot.active = true;
  slot.category = category;
  heap_push(HeapKey{when, seq}, HeapRef{slot_index, slot.generation});
  ++live_;
  ++stats_.scheduled;
  if (stored_inline) {
    ++stats_.inline_events;
  } else {
    ++stats_.spilled_events;
  }
  if (scheduled_counter_ != nullptr) {
    scheduled_counter_->inc();
    (stored_inline ? inline_counter_ : spilled_counter_)->inc();
  }
  note_depth();
}

bool Simulator::reinsert_parked(std::uint32_t slot_index,
                                std::uint32_t generation, Time when,
                                std::uint64_t seq) {
  if (slot_index >= slot_count_) return false;
  Slot& slot = slot_at(slot_index);
  // Cancelled while parked: the slot was freed (generation bumped) and
  // live_/stats_ already adjusted by cancel(); only the seq is spent.
  if (!slot.active || slot.generation != generation) return false;
  heap_push(HeapKey{when, seq}, HeapRef{slot_index, generation});
  return true;
}

std::size_t Simulator::run() {
  const std::uint64_t t0 = prof_ != nullptr ? obs::prof_ticks() : 0;
  std::size_t executed = 0;
  while (pop_one()) ++executed;
  if (prof_ != nullptr) prof_close(t0);
  return executed;
}

std::size_t Simulator::run_until(Time deadline) {
  const std::uint64_t t0 = prof_ != nullptr ? obs::prof_ticks() : 0;
  std::size_t executed = 0;
  // Deliberately checks the raw heap top — tombstones included — to
  // match the pre-slab engine's loop condition exactly, keeping replay
  // digests identical for runs that mix cancel() with run_until().
  while (!heap_keys_.empty() && heap_keys_.front().when <= deadline) {
    if (pop_one()) ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  if (prof_ != nullptr) prof_close(t0);
  return executed;
}

std::size_t Simulator::run_steps(std::size_t limit) {
  const std::uint64_t t0 = prof_ != nullptr ? obs::prof_ticks() : 0;
  std::size_t executed = 0;
  while (executed < limit && pop_one()) ++executed;
  if (prof_ != nullptr) prof_close(t0);
  return executed;
}

void Simulator::bind_metrics(obs::MetricsRegistry& registry) {
  registry.set_help("sim.queue.depth", "Events pending in the engine heap");
  registry.set_help("sim.queue.max_depth", "High-water pending-event count");
  registry.set_help("sim.queue.scheduled", "Events scheduled since start");
  registry.set_help("sim.queue.executed", "Events executed since start");
  registry.set_help("sim.queue.cancelled", "Events cancelled before running");
  depth_gauge_ = &registry.gauge("sim.queue.depth");
  max_depth_gauge_ = &registry.gauge("sim.queue.max_depth");
  scheduled_counter_ = &registry.counter("sim.queue.scheduled");
  executed_counter_ = &registry.counter("sim.queue.executed");
  cancelled_counter_ = &registry.counter("sim.queue.cancelled");
  inline_counter_ = &registry.counter("sim.queue.inline");
  spilled_counter_ = &registry.counter("sim.queue.spilled");
  depth_gauge_->set(static_cast<double>(live_));
  max_depth_gauge_->set(static_cast<double>(stats_.max_depth));
}

}  // namespace roads::sim
