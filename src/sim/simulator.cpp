#include "sim/simulator.h"

#include <stdexcept>

namespace roads::sim {

EventId Simulator::schedule_at(Time when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator: scheduling into the past");
  }
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

EventId Simulator::schedule_after(Time delay, std::function<void()> fn) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (pending_ids_.erase(id) > 0) cancelled_.insert(id);
}

bool Simulator::pop_one() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_ids_.erase(ev.id);
    now_ = ev.when;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (pop_one()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (pop_one()) ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

std::size_t Simulator::run_steps(std::size_t limit) {
  std::size_t executed = 0;
  while (executed < limit && pop_one()) ++executed;
  return executed;
}

}  // namespace roads::sim
