#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace roads::sim {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot_index = free_head_;
    free_head_ = slot_at(slot_index).next_free;
    return slot_index;
  }
  if (slot_count_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return static_cast<std::uint32_t>(slot_count_++);
}

void Simulator::free_slot(std::uint32_t slot_index) {
  Slot& slot = slot_at(slot_index);
  slot.active = false;
  ++slot.generation;  // invalidates the heap tombstone and any live id
  slot.next_free = free_head_;
  free_head_ = slot_index;
}

void Simulator::note_depth() {
  if (live_ > stats_.max_depth) {
    stats_.max_depth = live_;
    if (max_depth_gauge_ != nullptr) {
      max_depth_gauge_->set(static_cast<double>(live_));
    }
  }
  if (live_ > window_max_depth_) window_max_depth_ = live_;
  if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<double>(live_));
}

std::size_t Simulator::take_window_max_depth() {
  const std::size_t high = window_max_depth_;
  window_max_depth_ = live_;
  return high;
}

// Hole-based sifts: the displaced element is kept in registers while
// the hole walks the tree, so each level costs one key+ref copy
// instead of a three-way swap.
void Simulator::heap_push(HeapKey key, HeapRef ref) {
  std::size_t i = heap_keys_.size();
  heap_keys_.push_back(key);
  heap_refs_.push_back(ref);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(key, heap_keys_[parent])) break;
    heap_keys_[i] = heap_keys_[parent];
    heap_refs_[i] = heap_refs_[parent];
    i = parent;
  }
  heap_keys_[i] = key;
  heap_refs_[i] = ref;
}

void Simulator::heap_pop_top() {
  const HeapKey key = heap_keys_.back();
  const HeapRef ref = heap_refs_.back();
  heap_keys_.pop_back();
  heap_refs_.pop_back();
  const std::size_t n = heap_keys_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child =
        first_child + kArity < n ? first_child + kArity : n;
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_keys_[c], heap_keys_[best])) best = c;
    }
    if (!before(heap_keys_[best], key)) break;
    heap_keys_[i] = heap_keys_[best];
    heap_refs_[i] = heap_refs_[best];
    i = best;
  }
  heap_keys_[i] = key;
  heap_refs_[i] = ref;
}

EventId Simulator::schedule_at(Time when, EventFn fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator: scheduling into the past");
  }
  const bool stored_inline = fn.is_inline();
  const std::uint32_t slot_index = acquire_slot();
  Slot& slot = slot_at(slot_index);
  slot.fn = std::move(fn);
  slot.active = true;
  const std::uint32_t gen = slot.generation;
  heap_push(HeapKey{when, next_seq_++}, HeapRef{slot_index, gen});
  ++live_;
  ++stats_.scheduled;
  if (stored_inline) {
    ++stats_.inline_events;
  } else {
    ++stats_.spilled_events;
  }
  if (scheduled_counter_ != nullptr) {
    scheduled_counter_->inc();
    (stored_inline ? inline_counter_ : spilled_counter_)->inc();
  }
  note_depth();
  return (static_cast<EventId>(gen) << 32) | slot_index;
}

EventId Simulator::schedule_after(Time delay, EventFn fn) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  const std::uint32_t slot_index = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot_index >= slot_count_) return;
  Slot& slot = slot_at(slot_index);
  if (!slot.active || slot.generation != gen) return;  // ran or cancelled
  slot.fn = nullptr;  // release the closure (and any spill block) now
  free_slot(slot_index);
  --live_;
  ++stats_.cancelled;
  if (cancelled_counter_ != nullptr) cancelled_counter_->inc();
  if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<double>(live_));
  // The heap entry stays behind as a tombstone; pop_one() discards it
  // when it reaches the top (generation mismatch).
}

bool Simulator::pop_one() {
  while (!heap_keys_.empty()) {
    const HeapKey top = heap_keys_.front();
    const HeapRef top_ref = heap_refs_.front();
    heap_pop_top();
    Slot& slot = slot_at(top_ref.slot);
    if (!slot.active || slot.generation != top_ref.gen) {
      continue;  // tombstone
    }
    // Retire the id before invoking so a handler cancelling itself is
    // a no-op, but keep the slot OFF the free list until the closure
    // returns: chunk addresses are stable, so the closure runs in
    // place (no move) while reschedules grow the slab around it.
    slot.active = false;
    ++slot.generation;
    --live_;
    now_ = top.when;
    ++stats_.executed;
    if (executed_counter_ != nullptr) executed_counter_->inc();
    if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<double>(live_));
    slot.fn();
    slot.fn = nullptr;
    slot.next_free = free_head_;
    free_head_ = top_ref.slot;
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (pop_one()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t executed = 0;
  // Deliberately checks the raw heap top — tombstones included — to
  // match the pre-slab engine's loop condition exactly, keeping replay
  // digests identical for runs that mix cancel() with run_until().
  while (!heap_keys_.empty() && heap_keys_.front().when <= deadline) {
    if (pop_one()) ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

std::size_t Simulator::run_steps(std::size_t limit) {
  std::size_t executed = 0;
  while (executed < limit && pop_one()) ++executed;
  return executed;
}

void Simulator::bind_metrics(obs::MetricsRegistry& registry) {
  depth_gauge_ = &registry.gauge("sim.queue.depth");
  max_depth_gauge_ = &registry.gauge("sim.queue.max_depth");
  scheduled_counter_ = &registry.counter("sim.queue.scheduled");
  executed_counter_ = &registry.counter("sim.queue.executed");
  cancelled_counter_ = &registry.counter("sim.queue.cancelled");
  inline_counter_ = &registry.counter("sim.queue.inline");
  spilled_counter_ = &registry.counter("sim.queue.spilled");
  depth_gauge_->set(static_cast<double>(live_));
  max_depth_gauge_->set(static_cast<double>(stats_.max_depth));
}

}  // namespace roads::sim
