// Simulation time base. All simulated durations and instants are
// microseconds held in 64-bit signed integers; helpers below keep unit
// conversions explicit at call sites.
#pragma once

#include <cstdint>

namespace roads::sim {

using Time = std::int64_t;  // microseconds since simulation start

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000;
constexpr Time kSecond = 1000 * kMillisecond;
constexpr Time kMinute = 60 * kSecond;

constexpr Time ms(std::int64_t v) { return v * kMillisecond; }
constexpr Time seconds(std::int64_t v) { return v * kSecond; }

constexpr double to_ms(Time t) { return static_cast<double>(t) / 1000.0; }
constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / 1e6;
}

}  // namespace roads::sim
