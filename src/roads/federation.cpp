#include "roads/federation.h"

#include <stdexcept>

#include "store/service_model.h"

namespace roads::core {

/// Stands in for a resource owner on its own machine: receives query
/// messages, applies the owner's sharing policy, replies (and ships
/// records in result-collection mode).
class Federation::OwnerAgent : public QueryTarget {
 public:
  OwnerAgent(Federation& federation, std::shared_ptr<ResourceOwner> owner)
      : federation_(federation), owner_(std::move(owner)) {}

  const std::shared_ptr<ResourceOwner>& owner() const { return owner_; }

  void handle_query(std::shared_ptr<RoadsClient> client,
                    QueryMode /*mode*/) override {
    const auto node = owner_->node();
    client->on_arrival(node);
    auto& network = federation_.network_;
    // Same span discipline as RoadsServer::handle_query: processing
    // opens at arrival and the deferred closures re-enter the context.
    const auto proc = network.begin_span(node, "proc");
    network.simulator().schedule_after(
        federation_.config_.query_processing_delay, [this, client, node,
                                                     proc, &network] {
          sim::ScopedTraceContext trace_scope(network, proc);
          auto records = owner_->answer(client->principal(), client->query());
          const std::size_t matches = records.size();
          const bool results_pending = client->collect_results() && matches > 0;
          network.send(node, client->location(), msg::redirect_reply(0),
                       sim::Channel::kQuery,
                       [client, node, matches, results_pending] {
                         client->on_reply(node, {}, matches, results_pending);
                       });
          if (!results_pending) {
            network.end_span(proc);
            return;
          }
          std::uint64_t bytes = 0;
          for (const auto& r : records) bytes += r.wire_size();
          store::QueryStats stats;
          stats.candidates_scanned = owner_->store().size();
          stats.matches = matches;
          const auto service = store::service_time_us(
              federation_.config_.service_model, stats, bytes);
          const auto svc = network.begin_span(node, "service");
          network.simulator().schedule_after(
              service,
              [client, node, bytes, svc, records = std::move(records),
               &network]() mutable {
                sim::ScopedTraceContext svc_scope(network, svc);
                network.send(node, client->location(), msg::results(bytes),
                             sim::Channel::kResult,
                             [client, node, records = std::move(records)]() mutable {
                               client->on_results(node, std::move(records));
                             });
                network.end_span(svc);
              });
          network.end_span(proc);
        });
  }

 private:
  Federation& federation_;
  std::shared_ptr<ResourceOwner> owner_;
};

Federation::Federation(FederationParams params)
    : config_(params.config),
      schema_(std::move(params.schema)),
      rng_(params.seed),
      // Sharded mode forces tracing off: the trace context is plain
      // single-threaded state that delivery closures write.
      trace_(params.trace_capacity > 0 && params.threads <= 1
                 ? std::make_unique<obs::TraceBuffer>(params.trace_capacity)
                 : nullptr),
      simulator_(),
      delay_space_(0, rng_.fork(0x5e1f), params.delay),
      network_(simulator_, delay_space_, rng_.fork(0x2e70), &metrics_,
               trace_.get()) {
  if (trace_) trace_->bind_metrics(metrics_);
  if (params.threads > 1) {
    sharded_ =
        std::make_unique<sim::ShardedSimulator>(simulator_, params.threads);
    sharded_->set_lookahead(delay_space_.min_latency());
    sharded_->set_tree_branching(config_.max_children);
    sharded_->bind_metrics(metrics_);
    network_.attach_sharded(sharded_.get());
  }
  if (params.profile) {
    profiler_ = std::make_unique<obs::Profiler>();
    if (sharded_) {
      sharded_->attach_profiler(profiler_.get());
    } else {
      simulator_.set_profile_sink(&profiler_->sink(0));
    }
  }
}

Federation::~Federation() = default;

RoadsServer& Federation::add_server() {
  const sim::NodeId id = delay_space_.add_node();
  auto server = std::make_unique<RoadsServer>(
      id, config_, network_, *this, schema_, rng_.fork(0x9000 + id));
  RoadsServer& ref = *server;
  servers_.push_back(std::move(server));
  targets_.push_back(&ref);

  if (!root_) {
    root_ = id;
    ref.become_root();
    return ref;
  }

  bool done = false;
  bool ok = false;
  ref.start_join(*root_, [&](bool success) {
    done = true;
    ok = success;
  });
  // The join protocol is the only traffic before start(); drain it
  // fully (including the post-accept branch-stats updates) so the next
  // joiner sees settled statistics — matching the paper's incremental
  // formation where joins are far slower than stats propagation.
  std::size_t guard = 0;
  while (drive_steps(1) > 0) {
    if (++guard > 1'000'000) {
      throw std::runtime_error("Federation: join protocol did not settle");
    }
  }
  if (!done || !ok) {
    throw std::runtime_error("Federation: server failed to join");
  }
  return ref;
}

void Federation::add_servers(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) add_server();
}

std::shared_ptr<ResourceOwner> Federation::add_owner(sim::NodeId attach_to,
                                                     ExportMode mode,
                                                     bool colocated) {
  if (attach_to >= servers_.size()) {
    throw std::out_of_range("Federation: unknown attachment server");
  }
  sim::NodeId owner_node = attach_to;
  if (!colocated) owner_node = delay_space_.add_node();
  if (sharded_ && owner_node != attach_to) {
    // A remote owner rides its attachment server's shard: their
    // query/reply chatter is the owner's only traffic.
    sharded_->pin_node(owner_node, sharded_->shard_of(attach_to));
  }
  auto owner = std::make_shared<ResourceOwner>(next_owner_id_++, owner_node,
                                               schema_);
  if (!colocated) {
    auto agent = std::make_unique<OwnerAgent>(*this, owner);
    if (owner_node != targets_.size()) {
      throw std::logic_error("Federation: node id bookkeeping out of sync");
    }
    targets_.push_back(agent.get());
    owner_agents_.push_back(std::move(agent));
  }
  (void)mode;  // the caller passes the mode again to attach_owner
  return owner;
}

void Federation::start() {
  if (started_) return;
  started_ = true;
  for (auto& s : servers_) {
    // Pin each server's initial timers onto its own shard; the ticks
    // re-arm through network().simulator() and stay there.
    sim::ScopedNodePin pin(sharded_.get(), s->id());
    s->start_timers();
  }
}

void Federation::stabilize(std::size_t rounds) {
  start();
  if (rounds == 0) rounds = topology().height() + 2;
  const sim::Time horizon =
      simulator_.now() +
      static_cast<sim::Time>(rounds) * config_.summary_refresh_period +
      sim::seconds(5);
  drive_until(horizon);
}

void Federation::advance(sim::Time duration) {
  drive_until(simulator_.now() + duration);
}

std::size_t Federation::drive_steps(std::size_t limit) {
  return sharded_ ? sharded_->run_steps(limit) : simulator_.run_steps(limit);
}

void Federation::drive_until(sim::Time deadline) {
  if (sharded_) {
    sharded_->run_until(deadline);
  } else {
    simulator_.run_until(deadline);
  }
}

sim::Simulator::Stats Federation::engine_stats() const {
  return sharded_ ? sharded_->stats() : simulator_.stats();
}

std::size_t Federation::take_window_max_depth() {
  return sharded_ ? sharded_->take_window_max_depth()
                  : simulator_.take_window_max_depth();
}

void Federation::set_refresh_paused(bool paused) {
  for (auto& s : servers_) s->set_refresh_paused(paused);
}

void Federation::apply_fault_plan(const sim::FaultPlan& plan) {
  network_.set_node_transition_handler([this](sim::NodeId node, bool up) {
    if (node >= servers_.size()) return;  // owner node: link-level only
    // Transitions execute on the global engine; pin so the restart's
    // fresh timers and join messages land on the node's own shard.
    sim::ScopedNodePin pin(sharded_.get(), node);
    RoadsServer& s = *servers_[node];
    if (!up) {
      if (s.alive()) s.fail();
      return;
    }
    if (s.alive()) return;
    // Rejoin by descending from the lowest-id alive peer — the most
    // likely root, and a deterministic choice either way.
    sim::NodeId seed = node;
    for (const auto& peer : servers_) {
      if (peer->id() != node && peer->alive()) {
        seed = peer->id();
        break;
      }
    }
    s.restart(seed);
  });
  network_.apply_fault_plan(plan);
}

QueryOutcome Federation::run_query(const record::Query& query,
                                   sim::NodeId start_server,
                                   Principal principal) {
  return run_query_scoped(query, start_server, RoadsClient::kUnlimitedScope,
                          principal);
}

QueryOutcome Federation::run_query_scoped(const record::Query& query,
                                          sim::NodeId start_server,
                                          unsigned scope_levels,
                                          Principal principal) {
  const auto query_bytes_before =
      network_.meter(sim::Channel::kQuery).bytes;
  const auto result_bytes_before =
      network_.meter(sim::Channel::kResult).bytes;

  auto client = std::make_shared<RoadsClient>(network_, *this, query,
                                              start_server, principal,
                                              config_.collect_results);
  client->set_scope(scope_levels);
  client->start(start_server);
  std::size_t guard = 0;
  while (!client->done() && drive_steps(1) > 0) {
    if (++guard > 50'000'000) {
      throw std::runtime_error("Federation: query did not complete");
    }
  }

  const auto& r = client->result();
  QueryOutcome out;
  out.complete = r.complete;
  out.latency_ms = sim::to_ms(r.forwarding_latency());
  out.response_ms = sim::to_ms(r.response_time());
  out.query_bytes =
      network_.meter(sim::Channel::kQuery).bytes - query_bytes_before;
  out.result_bytes =
      network_.meter(sim::Channel::kResult).bytes - result_bytes_before;
  out.servers_contacted = r.servers_contacted;
  out.matching_records = r.matching_records;
  out.contacted.assign(client->visited().begin(), client->visited().end());
  out.records = r.records;
  out.sheds = r.sheds;
  out.rejected = r.rejected;

  // Load accounting for the telemetry probes: which servers this query
  // touched, plus the completed-count/latency instruments the Timeline
  // turns into per-window query rates and windowed quantiles.
  if (query_visits_.size() < servers_.size()) {
    query_visits_.resize(servers_.size(), 0);
  }
  for (const auto node : out.contacted) {
    if (node < query_visits_.size()) ++query_visits_[node];
  }
  if (out.complete) {
    metrics_.counter("roads.query.completed").inc();
    metrics_.histogram("roads.query.latency_ms").record(out.latency_ms);
  }

  // Critical-path attribution (tracing on): rebuild this query's span
  // tree from the buffered events and split the measured latency into
  // network / processing / queueing / false-positive-detour phases.
  out.trace_id = client->span();
  if (trace_ && out.trace_id != 0) {
    const auto tree = obs::SpanTree::build(trace_->events());
    auto fwd = obs::query_critical_path(tree, out.trace_id,
                                        obs::QueryEndpoint::kForwarding);
    if (fwd.complete) {
      metrics_.histogram("roads.query.critpath.network_ms")
          .record(fwd.network_us / 1000.0);
      metrics_.histogram("roads.query.critpath.processing_ms")
          .record(fwd.processing_us / 1000.0);
      metrics_.histogram("roads.query.critpath.queueing_ms")
          .record(fwd.queueing_us / 1000.0);
      metrics_.histogram("roads.query.critpath.detour_ms")
          .record(fwd.detour_us / 1000.0);
    } else {
      // Chain broken: history evicted from the bounded buffer (or the
      // query never left the start server).
      metrics_.counter("roads.query.critpath.incomplete").inc();
    }
    out.forwarding_path = fwd;
    if (config_.collect_results) {
      auto resp = obs::query_critical_path(tree, out.trace_id,
                                           obs::QueryEndpoint::kResponse);
      if (resp.complete || resp.terminal_span != 0) {
        out.response_path = resp;
      }
    }
  }
  return out;
}

std::shared_ptr<RoadsClient> Federation::issue_query(const record::Query& query,
                                                     sim::NodeId start_server,
                                                     Principal principal) {
  auto client = std::make_shared<RoadsClient>(network_, *this, query,
                                              start_server, principal,
                                              config_.collect_results);
  client->start(start_server);
  return client;
}

void Federation::note_query_complete(const RoadsClient& client) {
  if (query_visits_.size() < servers_.size()) {
    query_visits_.resize(servers_.size(), 0);
  }
  for (const auto node : client.visited()) {
    if (node < query_visits_.size()) ++query_visits_[node];
  }
  const auto& r = client.result();
  if (r.complete) {
    metrics_.counter("roads.query.completed").inc();
    metrics_.histogram("roads.query.latency_ms")
        .record(sim::to_ms(r.forwarding_latency()));
  }
}

std::vector<RoadsServer*> Federation::servers() {
  std::vector<RoadsServer*> out;
  out.reserve(servers_.size());
  for (auto& s : servers_) out.push_back(s.get());
  return out;
}

hierarchy::Topology Federation::topology() const {
  std::vector<sim::NodeId> parents(servers_.size(),
                                   hierarchy::Topology::kNoParent);
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (!servers_[i]->alive()) {
      parents[i] = hierarchy::Topology::kAbsent;
      continue;
    }
    if (auto p = servers_[i]->parent()) parents[i] = *p;
  }
  return hierarchy::Topology(std::move(parents));
}

RoadsServer& Federation::server(sim::NodeId id) {
  if (id >= servers_.size()) {
    throw std::out_of_range("Federation: unknown server id");
  }
  return *servers_[id];
}

QueryTarget& Federation::query_target(sim::NodeId id) {
  if (id >= targets_.size()) {
    throw std::out_of_range("Federation: unknown query target");
  }
  return *targets_[id];
}

}  // namespace roads::core
