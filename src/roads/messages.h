// Wire-size accounting for every ROADS protocol message.
//
// The simulator delivers payloads as in-process closures, but each send
// is charged the bytes a real implementation would put on the wire;
// these helpers centralize that size model so the overhead metrics
// (Figs. 4, 5, 8 and the §IV equations) rest on one consistent
// accounting.
#pragma once

#include <cstdint>

#include "hierarchy/branch_stats.h"
#include "record/query.h"
#include "summary/resource_summary.h"

namespace roads::core {

/// Query forwarding mode, carried in every query message.
enum class QueryMode : std::uint8_t {
  /// First contact: the server may use its replication-overlay
  /// shortcuts (siblings, ancestor siblings, ancestor locals).
  kStart,
  /// Branch descent: evaluate local data and children only.
  kBranch,
  /// Terminal probe of a server/owner's local data; no redirects.
  kLocalOnly,
};

namespace msg {

/// Join protocol: request carries joiner id + excluded branch list.
inline std::uint64_t join_request(std::size_t excluded) {
  return 24 + 4 * excluded;
}
/// Accept / redirect / reject decision plus the acceptor's root path.
inline std::uint64_t join_response(std::size_t root_path_len) {
  return 16 + 4 * root_path_len;
}

/// Child -> parent heartbeat with branch stats.
inline std::uint64_t heartbeat_up() { return 24; }
/// Parent -> child heartbeat carrying the root path and, from the root,
/// its children list (election contacts).
inline std::uint64_t heartbeat_down(std::size_t root_path_len,
                                    std::size_t root_children) {
  return 24 + 4 * root_path_len + 4 * root_children;
}
/// Departure notice to parent and children.
inline std::uint64_t leave_notice() { return 16; }

/// Bottom-up summary update: header + branch stats + summary payload.
inline std::uint64_t summary_update(const summary::ResourceSummary& s) {
  return 24 + s.wire_size();
}
/// Top-down replica push: header + origin/kind/role tags + payload.
inline std::uint64_t replica_push(const summary::ResourceSummary& s) {
  return 28 + s.wire_size();
}

/// Query message: query payload + mode byte.
inline std::uint64_t query(const record::Query& q) {
  return q.wire_size() + 1;
}
/// Redirect reply: header + (id, mode) per target + local match count.
inline std::uint64_t redirect_reply(std::size_t targets) {
  return 20 + 5 * targets;
}
/// Overload (load-shed) response: header + reason byte. Sent instead
/// of a redirect reply when a query arrives past the admission
/// controller's queue high-watermark.
inline std::uint64_t overload_reply() { return 12; }
/// Result transfer: header + record payload bytes.
inline std::uint64_t results(std::uint64_t record_bytes) {
  return 16 + record_bytes;
}

}  // namespace msg
}  // namespace roads::core
