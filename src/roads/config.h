// Tunables of a ROADS deployment. One RoadsConfig is shared by every
// server in a federation; the defaults reproduce the paper's simulation
// setup (§V): at most 8 children per server, 1000 histogram buckets per
// attribute, summaries refreshed every ts with a TTL of a few refresh
// periods.
#pragma once

#include <cstddef>
#include <cstdint>

#include "hierarchy/join_policy.h"
#include "sim/time.h"
#include "store/service_model.h"
#include "summary/attribute_summary.h"

namespace roads::core {

struct RoadsConfig {
  /// Maximum children a server accepts (node degree, Fig. 10 sweep).
  std::size_t max_children = 8;

  /// Join steering policy (balanced vs random, ablation).
  hierarchy::JoinPolicyKind join_policy =
      hierarchy::JoinPolicyKind::kBalanced;

  /// Summary geometry (histogram buckets, categorical mode).
  summary::SummaryConfig summary;

  /// Summary refresh period ts: every server recomputes and pushes its
  /// summaries this often (§IV uses ts >> tr since summaries change an
  /// order of magnitude slower than records).
  sim::Time summary_refresh_period = sim::seconds(100);

  /// Soft-state TTL for summaries; must exceed the refresh period or
  /// healthy replicas would expire between refreshes.
  sim::Time summary_ttl = sim::seconds(350);

  /// Digest-suppressed propagation: a summary push whose content digest
  /// equals the last one sent on that (destination, origin, kind)
  /// stream is skipped — except every K-th refresh round, the keepalive
  /// wave, which pushes everything so downstream soft-state TTLs keep
  /// being renewed. Must satisfy K * summary_refresh_period <
  /// summary_ttl or healthy replicas expire between keepalives. 0
  /// disables suppression (every round pushes, the paper's literal
  /// protocol and the ablation baseline).
  std::size_t summary_keepalive_rounds = 3;

  /// Incremental summary refresh: each server maintains its store
  /// summary from the store's change log (O(changed records) per
  /// round) instead of re-scanning every record. Off restores the full
  /// recompute for A/B measurement.
  bool incremental_refresh = true;

  /// Replication overlay (§III-C). When disabled, servers keep only
  /// child summaries, queries must start at the root, and the root is
  /// again a bottleneck — the ablation baseline.
  bool overlay_enabled = true;

  /// Hierarchy maintenance (heartbeats, failure detection, TTL sweeps).
  /// Off by default so metric-focused experiments do not pay for
  /// maintenance events; churn tests and examples turn it on.
  bool maintenance_enabled = false;
  sim::Time heartbeat_period = sim::seconds(10);
  /// A peer is declared failed after this many missed heartbeats.
  int heartbeat_miss_limit = 3;

  /// Per-query server processing delay before replying to the client
  /// (summary evaluation, bookkeeping).
  sim::Time query_processing_delay = sim::ms(1);

  /// When true, servers with matching records also retrieve and return
  /// them (Fig. 11 total-response-time mode); when false queries only
  /// measure forwarding (the §V-A simulations).
  bool collect_results = false;
  store::ServiceModelParams service_model;

  // --- Admission control (open-loop serving) -------------------------------
  /// Per-server concurrent query evaluations. 0 = unlimited: every
  /// arriving query gets its own processing timer, the closed-loop
  /// behaviour every existing experiment measures (and the replay
  /// digests pin). >0 turns the server into a k-server queueing
  /// station: at most this many queries evaluate at once, the rest
  /// wait in the inbound queue.
  std::size_t query_concurrency_limit = 0;

  /// Inbound queue high-watermark (only meaningful with a concurrency
  /// limit). A query arriving with the queue at this depth is shed:
  /// the server replies immediately with an overload message instead
  /// of queueing it, which keeps waiting time — and hence p99 — bounded
  /// at roughly (limit + queue) * service_time.
  std::size_t query_queue_limit = 64;

  // --- Digest-keyed result caching -----------------------------------------
  /// Per-server query-result cache keyed on (query digest, folded
  /// summary-state digest). Off by default: caching changes message
  /// timing, so the existing goldens only hold with it disabled.
  bool query_cache_enabled = false;

  /// Result-cache bounds: entries and total cached bytes (records +
  /// target lists), LRU-evicted.
  std::size_t query_cache_max_entries = 4096;
  std::uint64_t query_cache_max_bytes = 1 << 22;  // 4 MiB

  /// Service time of a cache hit (lookup + reply assembly). A hit
  /// occupies an evaluation slot for this long instead of
  /// query_processing_delay — the source of the cache's throughput win.
  sim::Time query_cache_hit_delay = 50;  // µs

  /// Negative cache of summary-prune misses: a forwarded query that
  /// proved a false positive (no local match, no live subtree/replica
  /// target) is remembered and answered empty for the TTL without
  /// occupying an evaluation slot — the absorber for the fp storms the
  /// staleness-attack scenarios generate. Entry-bounded, FIFO-expired.
  std::size_t negative_cache_max_entries = 1024;
  sim::Time negative_cache_ttl = sim::seconds(5);
};

}  // namespace roads::core
