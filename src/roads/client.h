// RoadsClient: one in-flight query, driven the way the paper describes
// (§III-A Searching): the client sends the query to a start server,
// receives a redirect list, queries those servers in parallel, and so
// on until no new redirects appear. The client records the arrival time
// at every server it contacts — query latency is the time the query
// reached the last server — plus, in result-collection mode (Fig. 11),
// the time the final record batch arrived back.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "record/query.h"
#include "record/record.h"
#include "roads/dispatch.h"
#include "roads/owner.h"
#include "sim/network.h"
#include "sim/time.h"

namespace roads::core {

class RoadsClient : public std::enable_shared_from_this<RoadsClient> {
 public:
  struct Result {
    bool complete = false;
    sim::Time issued_at = 0;
    /// When the query reached the last server it had to contact — the
    /// paper's query-latency metric endpoint.
    sim::Time last_arrival = 0;
    /// When the last result batch arrived (result-collection mode).
    sim::Time last_result_at = 0;
    std::size_t servers_contacted = 0;
    std::size_t matching_records = 0;
    std::vector<record::ResourceRecord> records;
    /// Servers that shed this query with an overload reply (admission
    /// control). The query still completes — shed branches simply go
    /// unsearched, like timed-out servers.
    std::size_t sheds = 0;
    /// True when the start server itself shed the query: the query
    /// received no service at all (rejected, not merely degraded).
    bool rejected = false;

    sim::Time forwarding_latency() const { return last_arrival - issued_at; }
    sim::Time response_time() const { return last_result_at - issued_at; }
  };

  /// `location` is the node whose network coordinates the client uses
  /// (the paper initiates each query "from a randomly chosen node").
  RoadsClient(sim::Network& network, Directory& directory,
              record::Query query, sim::NodeId location,
              Principal principal = kAnonymous, bool collect_results = false);

  /// How long to wait for a contacted server before writing it off as
  /// failed; keeps queries from hanging on dead servers during churn.
  void set_reply_timeout(sim::Time timeout) { reply_timeout_ = timeout; }

  /// Search-scope control (§III-C): limit the search to the branch of
  /// the start server's ancestor `levels` up — 1 covers the parent's
  /// branch (start subtree + siblings), 2 the grandparent's, and so
  /// on. kUnlimitedScope (default) searches the whole hierarchy.
  static constexpr unsigned kUnlimitedScope = 255;
  void set_scope(unsigned levels) { scope_ = levels; }
  unsigned scope() const { return scope_; }

  const record::Query& query() const { return query_; }
  Principal principal() const { return principal_; }
  sim::NodeId location() const { return location_; }
  bool collect_results() const { return collect_results_; }

  /// Issues the query to the start server (usually the client's own
  /// attachment point; with the replication overlay any server works).
  void start(sim::NodeId start_server);

  bool done() const { return result_.complete; }
  const Result& result() const { return result_; }
  /// Every server/owner node this query contacted.
  const std::set<sim::NodeId>& visited() const { return visited_; }
  /// Root span id of this query's causal tree — every event and span
  /// of the query carries it as `trace` (0 when the network has no
  /// trace buffer attached).
  std::uint64_t span() const { return span_; }

  // --- Server-side callbacks (invoked at message delivery time) ---

  /// The query message reached `server` now.
  void on_arrival(sim::NodeId server);

  /// Redirect reply: follow-up targets, how many records matched
  /// locally, and whether a result transfer will follow.
  void on_reply(sim::NodeId server,
                std::vector<std::pair<sim::NodeId, QueryMode>> targets,
                std::size_t local_matches, bool results_pending);

  /// A result batch arrived from `server`.
  void on_results(sim::NodeId server,
                  std::vector<record::ResourceRecord> records);

  /// `server` shed the query (admission-control overload reply). The
  /// client stops waiting on it, like a timeout but explicit and
  /// immediate.
  void on_overload(sim::NodeId server);

 private:
  void visit(sim::NodeId target, QueryMode mode);
  void on_reply_timeout(sim::NodeId server);
  void check_complete();
  void trace_span(obs::TraceKind kind, sim::NodeId node, double value = 0.0);

  sim::Network& network_;
  Directory& directory_;
  record::Query query_;
  sim::NodeId location_;
  Principal principal_;
  bool collect_results_;

  sim::Time reply_timeout_ = 10 * sim::kSecond;
  unsigned scope_ = kUnlimitedScope;
  std::set<sim::NodeId> visited_;
  std::set<sim::NodeId> replied_;
  std::size_t outstanding_replies_ = 0;
  std::set<sim::NodeId> results_expected_;
  std::set<sim::NodeId> results_arrived_;
  bool started_ = false;
  sim::NodeId start_server_ = 0;
  std::uint64_t span_ = 0;
  Result result_;
};

}  // namespace roads::core
