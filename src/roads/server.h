// RoadsServer: one server of the federated hierarchy. Implements every
// protocol of §III over the simulated network:
//
//  * join (balanced descent with backtracking, loop avoidance via root
//    paths, join-request timeouts for dead targets);
//  * bottom-up summary aggregation (periodic refresh, child branch
//    summaries, branch stats);
//  * the replication overlay (top-down pushes of own branch/local
//    summaries, receive-time forwarding of child summaries to siblings,
//    cascade of replicas down the subtree with role transformation);
//  * maintenance (heartbeats both ways, failure detection, rejoin via
//    root-path candidates, root election, graceful departure, TTL
//    sweeps);
//  * query evaluation (local store + owner attachments + child branch
//    summaries + overlay shortcuts, client-driven redirects).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "hierarchy/child_table.h"
#include "hierarchy/join_policy.h"
#include "hierarchy/root_path.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "overlay/replica_store.h"
#include "record/schema.h"
#include "roads/client.h"
#include "roads/config.h"
#include "roads/dispatch.h"
#include "roads/messages.h"
#include "roads/owner.h"
#include "roads/query_cache.h"
#include "sim/network.h"
#include "store/record_store.h"
#include "summary/resource_summary.h"
#include "util/unique_function.h"
#include "util/rng.h"

namespace roads::core {

using overlay::SummaryPtr;

class RoadsServer : public QueryTarget {
 public:
  RoadsServer(sim::NodeId id, const RoadsConfig& config, sim::Network& network,
              Directory& directory, record::Schema schema, util::Rng rng);

  // --- Identity & topology -------------------------------------------------
  sim::NodeId id() const { return id_; }
  bool is_root() const { return !parent_.has_value(); }
  std::optional<sim::NodeId> parent() const { return parent_; }
  const hierarchy::ChildTable& children() const { return children_; }
  const hierarchy::RootPath& root_path() const { return root_path_; }
  bool alive() const { return alive_; }

  // --- Lifecycle -----------------------------------------------------------
  /// Makes this server the hierarchy root (the bootstrap node).
  void become_root();
  /// Joins the hierarchy starting the descent at `seed`; `on_complete`
  /// fires with success/failure once settled.
  void start_join(sim::NodeId seed,
                  util::UniqueFunction<void(bool)> on_complete = {});
  /// Starts the periodic summary-refresh timer (and maintenance timers
  /// when the config enables them).
  void start_timers();
  /// Temporarily skips the periodic summary refresh (timers keep
  /// ticking cheaply). Experiment drivers pause refresh while replaying
  /// query batches so latency is measured under steady summaries.
  void set_refresh_paused(bool paused) { refresh_paused_ = paused; }

  /// Graceful departure: notify parent and children, then go silent.
  void leave();
  /// Abrupt failure: timers stop, the network drops this node's
  /// traffic; peers find out via heartbeat timeouts.
  void fail();
  /// Recovers a failed server: soft state (topology, child summaries,
  /// replicas, suppression digests) is lost; the record store and owner
  /// attachments are durable. The server comes back up, restarts its
  /// timers and rejoins the hierarchy by descending from `seed` —
  /// becoming a (partition) root if the join fails.
  void restart(sim::NodeId seed);

  // --- Resource attachment (§III-A) ----------------------------------------
  /// Attaches an owner. kDetailedRecords copies the owner's records
  /// into this server's store (owner trusts/controls this server);
  /// kSummaryOnly keeps records at the owner, which exports a summary
  /// and answers detailed queries itself.
  void attach_owner(std::shared_ptr<ResourceOwner> owner, ExportMode mode);
  /// Re-exports an owner's current data after it changed.
  void reexport_owner(record::OwnerId owner);

  store::RecordStore& local_store() { return store_; }
  const store::RecordStore& local_store() const { return store_; }

  // --- Summary protocol ----------------------------------------------------
  /// Recomputes local + branch summaries (incrementally when the config
  /// allows), sends the branch summary to the parent, pushes own
  /// summaries and stored child summaries to children. Pushes whose
  /// content digest matches the last one sent are suppressed except on
  /// keepalive rounds. Runs on the ts timer; tests may call it
  /// directly.
  void refresh_summaries();

  /// `keepalive` tags pushes from a keepalive wave: receivers propagate
  /// those unconditionally so TTL renewal reaches the whole subtree.
  void handle_child_summary(sim::NodeId child, hierarchy::BranchStats stats,
                            SummaryPtr branch, bool keepalive = true);
  void handle_replica(overlay::ReplicaSpec spec, SummaryPtr summary,
                      bool keepalive = true);

  /// Latest computed summaries (may be null before the first refresh).
  SummaryPtr branch_summary() const { return branch_summary_; }
  SummaryPtr local_summary() const { return local_summary_; }
  const overlay::ReplicaStore& replicas() const { return replicas_; }
  /// Branch summaries received from children (origin -> summary).
  const std::map<sim::NodeId, SummaryPtr>& child_summaries() const {
    return child_summaries_;
  }

  /// Total bytes of summary state held (children + replicas + own) —
  /// Table I's per-server storage metric.
  std::uint64_t stored_summary_bytes() const;

  // --- Join protocol (server side) ------------------------------------------
  void handle_join_request(sim::NodeId joiner,
                           std::vector<sim::NodeId> excluded);

  // --- Maintenance protocol -------------------------------------------------
  void handle_stats_update(sim::NodeId child, hierarchy::BranchStats stats);
  void handle_heartbeat_up(sim::NodeId child, hierarchy::BranchStats stats);
  void handle_heartbeat_down(sim::NodeId from, hierarchy::RootPath path,
                             std::vector<sim::NodeId> root_children);
  void handle_leave_from_child(sim::NodeId child);
  void handle_leave_from_parent(sim::NodeId parent);

  // --- Queries ---------------------------------------------------------------
  void handle_query(std::shared_ptr<RoadsClient> client,
                    QueryMode mode) override;

  /// Admission/cache introspection (tests and probes).
  std::size_t active_queries() const { return active_queries_; }
  std::size_t queued_queries() const { return query_queue_.size(); }
  std::size_t query_cache_entries() const { return query_cache_.size(); }
  std::uint64_t query_cache_bytes() const { return query_cache_.bytes(); }
  std::size_t negative_cache_entries() const { return negative_cache_.size(); }

 private:
  struct Attachment {
    std::shared_ptr<ResourceOwner> owner;
    ExportMode mode = ExportMode::kDetailedRecords;
    SummaryPtr summary;  // latest export for kSummaryOnly
    /// Owner-store version and summary digest at the last export, so
    /// unchanged owners skip both the recompute and the re-send.
    std::uint64_t exported_version = 0;
    std::uint64_t exported_digest = 0;
  };

  enum class JoinOutcome : std::uint8_t { kAccepted, kRedirect, kBacktrack };

  void handle_join_response(sim::NodeId responder, JoinOutcome outcome,
                            sim::NodeId redirect_to,
                            hierarchy::RootPath responder_path);
  void send_join_request(sim::NodeId target);
  void finish_join(bool success);

  /// Recomputes this node's aggregate stats and pushes them up if they
  /// changed (keeps join steering accurate between refresh rounds).
  void push_stats_up();

  void refresh_attachment_summaries(bool keepalive);
  SummaryPtr compute_local_summary();
  SummaryPtr compute_branch_summary() const;
  void push_replica_to_children(const overlay::ReplicaSpec& spec,
                                const SummaryPtr& summary, bool keepalive);
  void forward_child_summary_to_siblings(sim::NodeId child,
                                         const SummaryPtr& summary,
                                         bool keepalive);

  /// Returns true when a push with `digest` must actually be sent to
  /// `dest` for the (origin, kind) stream — i.e. the content changed,
  /// the stream is new, or this is a keepalive wave — and records the
  /// digest as the last sent. False means: suppress.
  bool note_push(sim::NodeId dest, sim::NodeId origin, std::uint8_t kind,
                 std::uint64_t digest, bool keepalive);

  void on_heartbeat_timer();
  void on_failure_check_timer();
  void parent_lost();
  void try_rejoin_candidates();

  // --- Query serving internals (admission + caching) ------------------------
  /// Starts serving an admitted query: cache lookup decides whether the
  /// evaluation slot is held for the hit delay or the full processing
  /// delay.
  void begin_query(std::shared_ptr<RoadsClient> client, QueryMode mode);
  /// The cold evaluation (local store + attachments + child summaries +
  /// overlay shortcuts), reply send, and cache fill. Runs inside the
  /// processing-delay closure under the `proc` span.
  void evaluate_query(const std::shared_ptr<RoadsClient>& client,
                      QueryMode mode, const obs::TraceContext& proc);
  /// Replays a cached reply (counters, redirect reply, result batch).
  void serve_cached(const std::shared_ptr<RoadsClient>& client,
                    const std::shared_ptr<const CachedReply>& entry,
                    const obs::TraceContext& proc);
  /// Releases an evaluation slot and admits the next queued query.
  void finish_query();
  /// Sheds `client` with an immediate overload reply.
  void shed_query(const std::shared_ptr<RoadsClient>& client);
  /// Cache key: query digest folded with mode, client scope/principal/
  /// collect flag and the current summary-state stamp.
  std::uint64_t cache_key(const RoadsClient& client, QueryMode mode) const;
  /// Fingerprint of every input a query evaluation reads: live store +
  /// owner-store versions plus the (dirty-flag cached) fold of child
  /// summary digests and replica digests. Equal stamps => evaluation
  /// would produce a byte-identical reply.
  std::uint64_t summary_state_stamp() const;
  /// Marks the child-summary/replica fold stale (called at every
  /// mutation site of those structures).
  void mark_summary_state_dirty();

  /// Sends a protocol message to `to`; `deliver(peer)` runs at the
  /// receiving server if it is alive at delivery time. Templated so
  /// the caller's functor composes into ONE sim::DeliverFn closure —
  /// no intermediate std::function wrapper, no extra allocation.
  template <class F>
  void send_to_server(sim::NodeId to, std::uint64_t bytes,
                      sim::Channel channel, F deliver) {
    network_.send(id_, to, bytes, channel,
                  [this, to, fn = std::move(deliver)]() mutable {
                    RoadsServer& peer = directory_.server(to);
                    if (peer.alive()) fn(peer);
                  });
  }

  /// Records a maintenance/query trace event when tracing is on.
  void trace_event(obs::TraceKind kind, sim::NodeId peer, double value = 0.0,
                   std::uint64_t span = 0) const;

  sim::NodeId id_;
  const RoadsConfig& config_;
  sim::Network& network_;
  Directory& directory_;
  record::Schema schema_;
  util::Rng rng_;
  hierarchy::JoinPolicy join_policy_;

  bool alive_ = true;
  bool timers_started_ = false;
  bool refresh_paused_ = false;
  /// Bumped by fail()/leave()/restart(). Self-rescheduling timer
  /// closures and join timeouts capture the epoch they were armed in
  /// and go inert when it changes — otherwise a crash+restart would
  /// resume the pre-crash timer chains alongside the new ones.
  std::uint64_t life_epoch_ = 0;
  std::optional<sim::NodeId> parent_;
  hierarchy::RootPath root_path_;
  hierarchy::ChildTable children_;
  std::map<sim::NodeId, SummaryPtr> child_summaries_;
  hierarchy::BranchStats last_pushed_stats_;

  // Federation-wide instruments, shared by every server through the
  // network's registry (§V accounting: hop counts, summary-prune false
  // positives, overlay shortcut usage, churn events).
  obs::Counter& query_hops_;
  obs::Counter& query_false_positives_;
  obs::Counter& summary_merges_;
  obs::Counter& overlay_shortcut_hits_;
  obs::Counter& joins_;
  obs::Counter& rejoins_;
  obs::Counter& heartbeat_misses_;
  // Incremental-refresh accounting (§ISSUE: make savings visible).
  obs::Counter& summary_refresh_skipped_;
  obs::Counter& summary_push_suppressed_;
  obs::Counter& summary_delta_slots_;
  obs::Counter& summary_full_rebuilds_;
  obs::Histogram& refresh_us_;
  // Query-serving counters (admission + digest-keyed cache).
  obs::Counter& cache_hits_;
  obs::Counter& cache_misses_;
  obs::Counter& cache_invalidates_;
  obs::Counter& cache_neg_hits_;
  obs::Counter& cache_sheds_;
  obs::Counter& cache_evicted_;

  store::RecordStore store_;
  std::vector<Attachment> attachments_;
  SummaryPtr local_summary_;
  SummaryPtr branch_summary_;
  overlay::ReplicaStore replicas_;
  /// Summary of store_ alone (no attachment merges), maintained
  /// incrementally from the store's change log between refreshes.
  summary::ResourceSummary store_summary_;
  /// Refresh rounds completed; round r is a keepalive wave when
  /// r % summary_keepalive_rounds == 0 (so the first round always is).
  std::uint64_t refresh_round_ = 0;
  /// Digest of the branch summary last pushed to the parent; reset on
  /// parent change so a new parent always gets a first push.
  std::optional<std::uint64_t> parent_push_digest_;
  /// Last digest pushed per destination child and (origin, kind)
  /// stream; entries for a child are dropped when it leaves or fails.
  std::map<sim::NodeId,
           std::map<std::pair<sim::NodeId, std::uint8_t>, std::uint64_t>>
      pushed_digests_;

  // Joiner-side state machine.
  struct JoinState {
    bool active = false;
    sim::NodeId current = 0;             // server being asked
    std::vector<sim::NodeId> descended;  // descent stack (for backtrack)
    std::vector<sim::NodeId> excluded;   // branches found unwilling
    std::vector<sim::NodeId> fallbacks;  // rejoin candidates still untried
    std::uint64_t request_seq = 0;       // matches replies to requests
    util::UniqueFunction<void(bool)> on_complete;
  };
  JoinState join_;

  // Last root-children list heard from the root (election contacts).
  std::vector<sim::NodeId> root_children_;
  sim::Time last_parent_heartbeat_ = 0;

  // Non-empty when this node became the root of a partition after its
  // rejoin attempts failed; the maintenance timer keeps retrying these
  // contacts so partitions re-merge once connectivity returns.
  std::vector<sim::NodeId> recovery_candidates_;

  // --- Concurrent query serving ---------------------------------------------
  struct QueuedQuery {
    std::shared_ptr<RoadsClient> client;
    QueryMode mode = QueryMode::kStart;
  };
  /// Queries currently holding an evaluation slot (admission on).
  std::size_t active_queries_ = 0;
  /// Bounded inbound queue; arrivals past query_queue_limit are shed.
  std::deque<QueuedQuery> query_queue_;
  QueryResultCache query_cache_;
  NegativeCache negative_cache_;
  /// Lazily recomputed fold of child-summary + replica digests; the
  /// dirty flag flips at every mutation site of those structures.
  mutable bool state_stamp_dirty_ = true;
  mutable std::uint64_t state_stamp_fold_ = 0;
};

}  // namespace roads::core
