// Digest-keyed query-result caching for concurrent query serving.
//
// A server's reply to a query is a pure function of (query, mode,
// client scope/principal/collect flag) and the summary state the
// evaluation reads: its own store, the summary-only attachments, the
// child branch summaries and the overlay replicas. PR 2's FNV content
// digests make that state cheap to fingerprint, so a cached reply is
// keyed on (query digest, folded state stamp) and any push, sweep or
// record mutation that moves a digest silently invalidates exactly the
// affected entries — stale keys simply stop matching and age out of
// the LRU (lazy invalidation; no walk over entries is ever needed).
//
// The result cache is bounded by entries AND bytes with LRU eviction
// (a Zipf-heavy tail of one-off queries cannot grow it unboundedly);
// the negative cache remembers summary-prune misses (false-positive
// redirects) under a TTL so fp storms — e.g. the scenario engine's
// staleness attacks — are absorbed without occupying evaluation slots.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "record/record.h"
#include "roads/messages.h"
#include "sim/network.h"
#include "sim/time.h"

namespace roads::core {

/// Everything a server computes for one query after admission: the
/// redirect target list, local match accounting, and (collect mode)
/// the matching records plus their precomputed retrieval service time.
/// Serving a CachedReply re-plays the counters the cold evaluation
/// would have bumped (false positive, overlay shortcuts).
struct CachedReply {
  std::vector<std::pair<sim::NodeId, QueryMode>> targets;
  std::size_t local_matches = 0;
  bool results_pending = false;
  std::vector<record::ResourceRecord> records;
  std::uint64_t record_bytes = 0;
  /// Retrieval service time (µs) for the result batch (collect mode).
  sim::Time service_us = 0;
  bool false_positive = false;
  std::uint64_t shortcut_hits = 0;

  /// Approximate resident footprint, charged against the byte bound.
  std::uint64_t bytes() const {
    return 64 + 16 * static_cast<std::uint64_t>(targets.size()) +
           record_bytes;
  }
};

/// LRU cache of CachedReply keyed by the 64-bit (query, state) key.
/// Entries are shared immutable objects so a hit being served stays
/// valid even if the entry is evicted before the reply fires.
/// Deterministic: eviction follows the recency list, never the hash
/// table's iteration order.
class QueryResultCache {
 public:
  QueryResultCache(std::size_t max_entries, std::uint64_t max_bytes)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  /// Looks up `key`, refreshing its recency on a hit.
  std::shared_ptr<const CachedReply> find(std::uint64_t key);

  /// Inserts (or replaces) `key`, then evicts least-recently-used
  /// entries until both bounds hold. Returns how many were evicted.
  std::size_t insert(std::uint64_t key, CachedReply reply);

  std::size_t size() const { return lru_.size(); }
  std::uint64_t bytes() const { return bytes_; }
  void clear();

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const CachedReply> reply;
  };
  std::size_t max_entries_;
  std::uint64_t max_bytes_;
  std::uint64_t bytes_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

/// Bounded TTL'd set of (query, state) keys that evaluated to a
/// summary-prune miss. Entries expire `ttl` after their last refresh;
/// expiry and capacity eviction both walk the insertion-order list, so
/// behaviour is independent of hash iteration order.
class NegativeCache {
 public:
  NegativeCache(std::size_t max_entries, sim::Time ttl)
      : max_entries_(max_entries), ttl_(ttl) {}

  /// True when `key` is present and fresh at `now` (prunes expired
  /// entries from the front of the age list on the way).
  bool contains(std::uint64_t key, sim::Time now);

  /// Remembers `key` at `now` (refreshes an existing entry).
  void insert(std::uint64_t key, sim::Time now);

  std::size_t size() const { return index_.size(); }
  void clear();

 private:
  void expire(sim::Time now);

  std::size_t max_entries_;
  sim::Time ttl_;
  std::list<std::pair<std::uint64_t, sim::Time>> order_;  // oldest first
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t, sim::Time>>::iterator>
      index_;
};

}  // namespace roads::core
