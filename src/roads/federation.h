// Federation: the top-level facade of the ROADS library.
//
// Owns the simulation substrate (clock, delay space, network), every
// RoadsServer, and the agents standing in for remote resource owners.
// Downstream users build a federation, attach owners with records,
// start it, let summaries stabilize, and run queries:
//
//   core::Federation fed({.seed = 42});
//   auto& root = fed.add_server();
//   auto& s1 = fed.add_server();
//   auto owner = fed.add_owner(s1.id(), core::ExportMode::kDetailedRecords);
//   owner->store().insert(record);
//   s1.attach_owner(owner, core::ExportMode::kDetailedRecords);  // or use
//   fed.start();                                                 // helpers
//   fed.stabilize();
//   auto outcome = fed.run_query(query, s1.id());
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "hierarchy/topology.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/span_tree.h"
#include "obs/trace.h"
#include "record/query.h"
#include "record/schema.h"
#include "roads/client.h"
#include "roads/config.h"
#include "roads/dispatch.h"
#include "roads/owner.h"
#include "roads/server.h"
#include "sim/delay_space.h"
#include "sim/network.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace roads::core {

struct FederationParams {
  RoadsConfig config;
  record::Schema schema = record::Schema::uniform_numeric(16);
  std::uint64_t seed = 1;
  sim::DelaySpaceParams delay;
  /// Bound on the structured trace ring (message, maintenance and
  /// query-span events); 0 disables tracing entirely.
  std::size_t trace_capacity = 8192;
  /// Engine shards (= worker threads) the simulation runs on. 1 is the
  /// sequential engine; N > 1 shards the nodes across N engines driven
  /// in parallel under conservative time windows — bit-identical
  /// results (see sim/sharded_simulator.h), but tracing is forced off
  /// because delivery contexts would race across shard threads.
  std::size_t threads = 1;
  /// Enables continuous handler-level profiling (obs/profile.h): every
  /// engine attributes per-event self-time to handler categories.
  /// Works at any thread count (unlike tracing) and never perturbs
  /// event order or digests.
  bool profile = false;
};

/// Everything a caller wants to know about one resolved query.
struct QueryOutcome {
  bool complete = false;
  /// Forwarding latency (§V metric 1): query issue to last server
  /// contact, in milliseconds.
  double latency_ms = 0.0;
  /// Total response time (Fig. 11): issue to last result batch.
  double response_ms = 0.0;
  /// Query-forwarding bytes this query added (§V metric 3).
  std::uint64_t query_bytes = 0;
  std::uint64_t result_bytes = 0;
  std::size_t servers_contacted = 0;
  std::size_t matching_records = 0;
  /// Nodes the query visited (load analysis, e.g. root-bottleneck
  /// measurements in the overlay ablation).
  std::vector<sim::NodeId> contacted;
  std::vector<record::ResourceRecord> records;
  /// Admission-control accounting: servers that shed this query with
  /// an overload reply, and whether the start server itself did (the
  /// query got no service at all).
  std::size_t sheds = 0;
  bool rejected = false;
  /// Root span id of the query's causal tree (0 when tracing is off).
  std::uint64_t trace_id = 0;
  /// Critical-path decomposition of the forwarding latency / total
  /// response time (set when tracing is on; response only in
  /// result-collection mode with at least one result batch). The four
  /// phases sum to the corresponding measured latency exactly.
  std::optional<obs::CriticalPath> forwarding_path;
  std::optional<obs::CriticalPath> response_path;
};

class Federation : public Directory {
 public:
  explicit Federation(FederationParams params);
  ~Federation() override;

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  // --- Construction --------------------------------------------------------

  /// Adds one server. The first becomes the root; later servers run the
  /// join protocol (descending from the root) to completion. Throws if
  /// a join fails outright.
  RoadsServer& add_server();
  /// Convenience: adds n servers.
  void add_servers(std::size_t n);

  /// Creates a resource owner. Co-located owners share the attachment
  /// server's machine; remote ones get their own point in the delay
  /// space and answer summary-mode queries themselves. The returned
  /// owner's store starts empty — fill it, then call attach_owner on
  /// the server (or use this overload's auto-attach).
  std::shared_ptr<ResourceOwner> add_owner(sim::NodeId attach_to,
                                           ExportMode mode,
                                           bool colocated = true);

  /// Starts every server's timers (summary refresh + maintenance).
  void start();

  /// Runs the simulation long enough for summaries to propagate
  /// everywhere: `rounds` refresh periods (default: tree height + 2).
  void stabilize(std::size_t rounds = 0);

  /// Runs the clock forward by `duration`.
  void advance(sim::Time duration);

  /// Pauses/resumes every server's periodic summary refresh (see
  /// RoadsServer::set_refresh_paused).
  void set_refresh_paused(bool paused);

  /// Installs a fault-injection plan on the network (see sim/fault.h)
  /// and hooks its crash/restart windows into the protocol layer: a
  /// crash window calls RoadsServer::fail() and a restart window calls
  /// RoadsServer::restart() seeded at the lowest-id alive server.
  /// Applying an empty plan heals the message-level faults.
  void apply_fault_plan(const sim::FaultPlan& plan);

  // --- Queries --------------------------------------------------------------

  /// Resolves a query starting at `start_server`, running the simulator
  /// until the query completes. Collects records when the config's
  /// collect_results is set.
  QueryOutcome run_query(const record::Query& query, sim::NodeId start_server,
                         Principal principal = kAnonymous);

  /// Scope-limited variant (§III-C): searches only the branch of the
  /// start server's ancestor `scope_levels` up — 0 is the start
  /// server's own subtree, 1 adds its siblings' branches, and so on.
  QueryOutcome run_query_scoped(const record::Query& query,
                                sim::NodeId start_server,
                                unsigned scope_levels,
                                Principal principal = kAnonymous);

  // --- Open-loop serving (load harness) ------------------------------------

  /// Starts a query WITHOUT driving the engine: the client resolves as
  /// the caller steps the simulation. The open-loop load harness
  /// schedules arrivals itself, keeps many clients in flight, and
  /// polls done(); call note_query_complete exactly once per finished
  /// client to fold it into the visit/latency accounting run_query
  /// performs inline.
  std::shared_ptr<RoadsClient> issue_query(const record::Query& query,
                                           sim::NodeId start_server,
                                           Principal principal = kAnonymous);

  /// Folds a finished open-loop client into query_visits_ and the
  /// completed-count / latency instruments (no-op counters for
  /// incomplete clients; visits always count).
  void note_query_complete(const RoadsClient& client);

  /// Advances the engine by at most `limit` events and returns how many
  /// executed (0 = drained). Sequential engine steps directly; sharded
  /// engines micro-step in exact global order, so — unlike advance() —
  /// stepping is safe while open-loop clients are in flight at any
  /// thread count, and bit-identical across them.
  std::size_t step(std::size_t limit) { return drive_steps(limit); }

  // --- Introspection ----------------------------------------------------------

  std::size_t server_count() const { return servers_.size(); }
  std::vector<RoadsServer*> servers();
  /// Snapshot of the live parent/child structure. Only includes
  /// servers; owner nodes are not part of the hierarchy.
  hierarchy::Topology topology() const;

  /// Per-server query visit counts (index == NodeId), accumulated
  /// across every run_query — the raw series behind the Timeline's
  /// query-load imbalance probe (max/mean + Gini).
  const std::vector<std::uint64_t>& query_visits() const {
    return query_visits_;
  }

  sim::Simulator& simulator() { return simulator_; }
  sim::Network& network() { return network_; }
  /// Mutable delay space: the scenario engine layers slow/asymmetric
  /// link overrides onto it (sim::DelaySpace::set_link_extra) — extras
  /// only ever add latency, so the sharded engine's min_latency()
  /// lookahead stays conservative.
  sim::DelaySpace& delay_space() { return delay_space_; }
  /// Non-null when FederationParams::threads > 1.
  sim::ShardedSimulator* sharded() { return sharded_.get(); }
  /// Aggregated engine statistics — identical to simulator().stats()
  /// sequentially; in sharded mode, counts summed across every shard
  /// and max_depth the federation-wide queue high-watermark
  /// (sum-of-shards maxima).
  sim::Simulator::Stats engine_stats() const;
  /// Per-window queue-depth watermark across every engine (the
  /// telemetry probes' view of take_window_max_depth).
  std::size_t take_window_max_depth();
  /// Shared instrument registry: network channel meters plus every
  /// server/overlay instrument of this federation.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// Structured event trace; nullptr when trace_capacity was 0.
  obs::TraceBuffer* trace() { return trace_.get(); }
  const obs::TraceBuffer* trace() const { return trace_.get(); }
  /// Handler-level profiler; nullptr unless FederationParams::profile.
  obs::Profiler* profiler() { return profiler_.get(); }
  const record::Schema& schema() const { return schema_; }
  const RoadsConfig& config() const { return config_; }
  RoadsConfig& mutable_config() { return config_; }
  util::Rng& rng() { return rng_; }

  // --- Directory ---------------------------------------------------------------
  RoadsServer& server(sim::NodeId id) override;
  QueryTarget& query_target(sim::NodeId id) override;

 private:
  /// Adapter letting a remote ResourceOwner answer query messages.
  class OwnerAgent;

  /// Route the drive loops through the sharded coordinator when one is
  /// attached (events then live in N heaps, not simulator_'s alone).
  std::size_t drive_steps(std::size_t limit);
  void drive_until(sim::Time deadline);

  RoadsConfig config_;
  record::Schema schema_;
  util::Rng rng_;
  obs::MetricsRegistry metrics_;           // must outlive network_
  std::unique_ptr<obs::TraceBuffer> trace_;  // likewise
  std::unique_ptr<obs::Profiler> profiler_;  // engines hold sink pointers
  sim::Simulator simulator_;
  sim::DelaySpace delay_space_;
  sim::Network network_;
  std::unique_ptr<sim::ShardedSimulator> sharded_;  // threads > 1 only

  std::vector<std::unique_ptr<RoadsServer>> servers_;  // index == NodeId
  std::vector<std::uint64_t> query_visits_;            // index == NodeId
  std::vector<std::unique_ptr<OwnerAgent>> owner_agents_;
  std::vector<QueryTarget*> targets_;  // index == NodeId
  std::optional<sim::NodeId> root_;
  record::OwnerId next_owner_id_ = 1;
  bool started_ = false;
};

}  // namespace roads::core
