#include "roads/client.h"

#include <algorithm>

namespace roads::core {

RoadsClient::RoadsClient(sim::Network& network, Directory& directory,
                         record::Query query, sim::NodeId location,
                         Principal principal, bool collect_results)
    : network_(network),
      directory_(directory),
      query_(std::move(query)),
      location_(location),
      principal_(principal),
      collect_results_(collect_results) {}

void RoadsClient::trace_span(obs::TraceKind kind, sim::NodeId node,
                             double value) {
  auto* trace = network_.trace();
  if (!trace || span_ == 0) return;
  obs::TraceEvent ev;
  ev.at_us = network_.simulator().now();
  ev.kind = kind;
  ev.span = span_;
  ev.node = node;
  ev.peer = location_;
  ev.value = value;
  trace->record(std::move(ev));
}

void RoadsClient::start(sim::NodeId start_server) {
  started_ = true;
  result_.issued_at = network_.simulator().now();
  result_.last_arrival = result_.issued_at;
  result_.last_result_at = result_.issued_at;
  if (auto* trace = network_.trace()) {
    span_ = trace->next_span();
    trace_span(obs::TraceKind::kQueryStart, start_server);
  }
  visit(start_server, QueryMode::kStart);
}

void RoadsClient::visit(sim::NodeId target, QueryMode mode) {
  if (!visited_.insert(target).second) return;  // already contacted
  ++outstanding_replies_;
  auto self = shared_from_this();
  network_.send(location_, target, msg::query(query_), sim::Channel::kQuery,
                [this, self, target, mode] {
                  directory_.query_target(target).handle_query(self, mode);
                });
  network_.simulator().schedule_after(
      reply_timeout_, [self, target] { self->on_reply_timeout(target); });
}

void RoadsClient::on_reply_timeout(sim::NodeId server) {
  if (result_.complete || replied_.count(server)) return;
  // The server never answered (failed or unreachable); stop waiting.
  replied_.insert(server);
  if (outstanding_replies_ > 0) --outstanding_replies_;
  check_complete();
}

void RoadsClient::on_arrival(sim::NodeId server) {
  result_.last_arrival =
      std::max(result_.last_arrival, network_.simulator().now());
  ++result_.servers_contacted;
  trace_span(obs::TraceKind::kQueryHop, server,
             sim::to_ms(network_.simulator().now() - result_.issued_at));
}

void RoadsClient::on_reply(
    sim::NodeId server, std::vector<std::pair<sim::NodeId, QueryMode>> targets,
    std::size_t local_matches, bool results_pending) {
  if (!replied_.insert(server).second) return;  // duplicate or timed out
  if (outstanding_replies_ == 0) return;        // stale reply after completion
  --outstanding_replies_;
  result_.matching_records += local_matches;
  if (results_pending) results_expected_.insert(server);
  if (!targets.empty()) {
    trace_span(obs::TraceKind::kQueryRedirect, server,
               static_cast<double>(targets.size()));
  }
  for (const auto& [node, mode] : targets) visit(node, mode);
  check_complete();
}

void RoadsClient::on_results(sim::NodeId server,
                             std::vector<record::ResourceRecord> records) {
  results_arrived_.insert(server);
  result_.last_result_at =
      std::max(result_.last_result_at, network_.simulator().now());
  for (auto& r : records) result_.records.push_back(std::move(r));
  check_complete();
}

void RoadsClient::check_complete() {
  if (!started_ || result_.complete) return;
  if (outstanding_replies_ > 0) return;
  if (collect_results_) {
    if (!std::includes(results_arrived_.begin(), results_arrived_.end(),
                       results_expected_.begin(), results_expected_.end())) {
      return;
    }
  }
  result_.complete = true;
  trace_span(obs::TraceKind::kQueryComplete, location_,
             static_cast<double>(result_.matching_records));
}

}  // namespace roads::core
