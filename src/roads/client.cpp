#include "roads/client.h"

#include <algorithm>

#include "obs/profile.h"

namespace roads::core {

RoadsClient::RoadsClient(sim::Network& network, Directory& directory,
                         record::Query query, sim::NodeId location,
                         Principal principal, bool collect_results)
    : network_(network),
      directory_(directory),
      query_(std::move(query)),
      location_(location),
      principal_(principal),
      collect_results_(collect_results) {}

void RoadsClient::trace_span(obs::TraceKind kind, sim::NodeId node,
                             double value) {
  auto* trace = network_.trace();
  if (!trace || span_ == 0) return;
  obs::TraceEvent ev;
  ev.at_us = network_.simulator().now();
  ev.kind = kind;
  ev.node = node;
  ev.peer = location_;
  ev.value = value;
  ev.trace = span_;  // the root span id names the query's causal tree
  // Lifecycle endpoints pin to the root span itself; per-hop markers
  // pin to the span they fired inside (the delivering transit span),
  // which is what the critical-path walk chains from.
  const auto ctx = network_.trace_context();
  const bool endpoint = kind == obs::TraceKind::kQueryStart ||
                        kind == obs::TraceKind::kQueryComplete;
  ev.span = (!endpoint && ctx.trace == span_ && ctx.span != 0) ? ctx.span
                                                               : span_;
  trace->record(std::move(ev));
}

void RoadsClient::start(sim::NodeId start_server) {
  started_ = true;
  start_server_ = start_server;
  result_.issued_at = network_.simulator().now();
  result_.last_arrival = result_.issued_at;
  result_.last_result_at = result_.issued_at;
  if (auto* trace = network_.trace()) {
    span_ = trace->next_span();
    trace_span(obs::TraceKind::kQueryStart, start_server);
  }
  // The initial visit runs under the query's root span so the first
  // query message (and everything downstream of it) chains into the
  // tree rooted at span_.
  sim::ScopedTraceContext scope(network_, obs::TraceContext{span_, span_, 0});
  visit(start_server, QueryMode::kStart);
}

void RoadsClient::visit(sim::NodeId target, QueryMode mode) {
  if (!visited_.insert(target).second) return;  // already contacted
  ++outstanding_replies_;
  // Covers the reply-timeout timer too: start() issues the first visit
  // outside any handler, where there is no category to inherit.
  obs::ScopedProfCategory prof_tag(obs::ProfCategory::kQueryForward);
  auto self = shared_from_this();
  network_.send(location_, target, msg::query(query_), sim::Channel::kQuery,
                [this, self, target, mode] {
                  directory_.query_target(target).handle_query(self, mode);
                });
  network_.simulator().schedule_after(
      reply_timeout_, [self, target] { self->on_reply_timeout(target); });
}

void RoadsClient::on_reply_timeout(sim::NodeId server) {
  if (result_.complete || replied_.count(server)) return;
  // The server never answered (failed or unreachable); stop waiting.
  replied_.insert(server);
  if (outstanding_replies_ > 0) --outstanding_replies_;
  check_complete();
}

void RoadsClient::on_overload(sim::NodeId server) {
  if (result_.complete || replied_.count(server)) return;
  replied_.insert(server);
  ++result_.sheds;
  if (server == start_server_) result_.rejected = true;
  if (outstanding_replies_ > 0) --outstanding_replies_;
  check_complete();
}

void RoadsClient::on_arrival(sim::NodeId server) {
  result_.last_arrival =
      std::max(result_.last_arrival, network_.simulator().now());
  ++result_.servers_contacted;
  trace_span(obs::TraceKind::kQueryHop, server,
             sim::to_ms(network_.simulator().now() - result_.issued_at));
}

void RoadsClient::on_reply(
    sim::NodeId server, std::vector<std::pair<sim::NodeId, QueryMode>> targets,
    std::size_t local_matches, bool results_pending) {
  if (!replied_.insert(server).second) return;  // duplicate or timed out
  if (outstanding_replies_ == 0) return;        // stale reply after completion
  --outstanding_replies_;
  result_.matching_records += local_matches;
  if (results_pending) results_expected_.insert(server);
  if (!targets.empty()) {
    trace_span(obs::TraceKind::kQueryRedirect, server,
               static_cast<double>(targets.size()));
  }
  for (const auto& [node, mode] : targets) visit(node, mode);
  check_complete();
}

void RoadsClient::on_results(sim::NodeId server,
                             std::vector<record::ResourceRecord> records) {
  results_arrived_.insert(server);
  result_.last_result_at =
      std::max(result_.last_result_at, network_.simulator().now());
  trace_span(obs::TraceKind::kQueryResult, server,
             static_cast<double>(records.size()));
  for (auto& r : records) result_.records.push_back(std::move(r));
  check_complete();
}

void RoadsClient::check_complete() {
  if (!started_ || result_.complete) return;
  if (outstanding_replies_ > 0) return;
  if (collect_results_) {
    if (!std::includes(results_arrived_.begin(), results_arrived_.end(),
                       results_expected_.begin(), results_expected_.end())) {
      return;
    }
  }
  result_.complete = true;
  trace_span(obs::TraceKind::kQueryComplete, location_,
             static_cast<double>(result_.matching_records));
}

}  // namespace roads::core
