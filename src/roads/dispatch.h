// Interfaces that break the client <-> server <-> federation dependency
// cycle. Queries are addressed to NodeIds; a Directory resolves an id
// to the QueryTarget living there (a RoadsServer, or a remote
// ResourceOwner answering in local-only mode) and to the RoadsServer
// protocol peer for server-to-server messages.
#pragma once

#include <memory>

#include "roads/messages.h"
#include "sim/delay_space.h"

namespace roads::core {

class RoadsClient;
class RoadsServer;

/// Anything that can receive a query message.
class QueryTarget {
 public:
  virtual ~QueryTarget() = default;
  virtual void handle_query(std::shared_ptr<RoadsClient> client,
                            QueryMode mode) = 0;
};

/// Resolves node ids to live protocol objects.
class Directory {
 public:
  virtual ~Directory() = default;
  virtual RoadsServer& server(sim::NodeId id) = 0;
  virtual QueryTarget& query_target(sim::NodeId id) = 0;
};

}  // namespace roads::core
