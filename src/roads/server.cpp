#include "roads/server.h"

#include <algorithm>

#include "obs/profile.h"
#include "util/hash.h"
#include "util/log.h"

namespace roads::core {

namespace {
/// Join requests to a dead server never get a reply; after this long
/// the joiner assumes the target failed and moves on.
constexpr sim::Time kJoinTimeout = sim::seconds(2);
}  // namespace

RoadsServer::RoadsServer(sim::NodeId id, const RoadsConfig& config,
                         sim::Network& network, Directory& directory,
                         record::Schema schema, util::Rng rng)
    : id_(id),
      config_(config),
      network_(network),
      directory_(directory),
      schema_(std::move(schema)),
      rng_(rng),
      join_policy_(config.join_policy, config.max_children),
      query_hops_(network.metrics().counter("roads.query.hops")),
      query_false_positives_(
          network.metrics().counter("roads.query.false_positives")),
      summary_merges_(network.metrics().counter("roads.summary.merges")),
      overlay_shortcut_hits_(
          network.metrics().counter("roads.overlay.shortcut_hits")),
      joins_(network.metrics().counter("roads.server.joins")),
      rejoins_(network.metrics().counter("roads.server.rejoins")),
      heartbeat_misses_(
          network.metrics().counter("roads.server.heartbeat_misses")),
      summary_refresh_skipped_(
          network.metrics().counter("roads.summary.refresh_skipped")),
      summary_push_suppressed_(
          network.metrics().counter("roads.summary.push_suppressed")),
      summary_delta_slots_(
          network.metrics().counter("roads.summary.delta_slots")),
      summary_full_rebuilds_(
          network.metrics().counter("roads.summary.full_rebuilds")),
      refresh_us_(network.metrics().histogram("roads.summary.refresh_us")),
      cache_hits_(network.metrics().counter("roads.query.cache.hit")),
      cache_misses_(network.metrics().counter("roads.query.cache.miss")),
      cache_invalidates_(
          network.metrics().counter("roads.query.cache.invalidate")),
      cache_neg_hits_(network.metrics().counter("roads.query.cache.neg_hit")),
      cache_sheds_(network.metrics().counter("roads.query.cache.shed")),
      cache_evicted_(network.metrics().counter("roads.query.cache.evicted")),
      store_(schema_),
      replicas_(config.summary_ttl),
      query_cache_(config.query_cache_max_entries,
                   config.query_cache_max_bytes),
      negative_cache_(config.negative_cache_max_entries,
                      config.negative_cache_ttl) {
  replicas_.bind_metrics(network.metrics());
}

void RoadsServer::trace_event(obs::TraceKind kind, sim::NodeId peer,
                              double value, std::uint64_t span) const {
  auto* trace = network_.trace();
  if (!trace) return;
  obs::TraceEvent ev;
  ev.at_us = network_.simulator().now();
  ev.kind = kind;
  ev.span = span;
  ev.node = id_;
  ev.peer = peer;
  ev.value = value;
  // Point events inherit the causal tree of whatever handler emits
  // them, so e.g. a heartbeat-miss shows up inside the failure-check
  // wave that detected it.
  ev.trace = network_.trace_context().trace;
  trace->record(std::move(ev));
}

// --------------------------------------------------------------------------
// Lifecycle
// --------------------------------------------------------------------------

void RoadsServer::become_root() {
  parent_.reset();
  root_path_ = hierarchy::RootPath({id_});
}

void RoadsServer::start_timers() {
  if (timers_started_) return;
  timers_started_ = true;
  auto& sim = network_.simulator();
  // Closures armed now die with this life epoch: after a crash+restart
  // the pre-crash timer chains must not resume next to the new ones.
  const std::uint64_t epoch = life_epoch_;

  // Stagger the first refresh so all servers do not fire in lockstep;
  // the offset is deterministic per seed.
  const auto first_refresh = static_cast<sim::Time>(
      rng_.uniform(0.0, static_cast<double>(sim::seconds(1))));
  // Self-rescheduling closures: each tick re-arms itself unless the
  // server has stopped. The tick body lives once in a shared
  // UniqueFunction; every arm schedules a 16-byte [tick] trampoline, so
  // re-arming never copies (or re-allocates) the closure state. The
  // body holds itself only weakly — the pending trampoline owns the
  // one strong reference, so a drained or destroyed simulator releases
  // the chain instead of leaking a shared_ptr cycle.
  auto schedule_refresh = std::make_shared<util::UniqueFunction<void()>>();
  *schedule_refresh =
      [this, epoch, weak = std::weak_ptr(schedule_refresh)] {
        if (!alive_ || life_epoch_ != epoch) return;
        if (!refresh_paused_) refresh_summaries();
        if (auto tick = weak.lock()) {
          network_.simulator().schedule_after(
              config_.summary_refresh_period, [tick] { (*tick)(); });
        }
      };
  {
    // Tick bodies profile as refresh-timer work; their re-arms inherit
    // the category from the executing handler automatically.
    obs::ScopedProfCategory prof_tag(obs::ProfCategory::kTimerRefresh);
    sim.schedule_after(first_refresh,
                       [tick = std::move(schedule_refresh)] { (*tick)(); });
  }

  if (!config_.maintenance_enabled) return;

  // Failure detection starts now: reset the heartbeat clocks so peers
  // that joined long before the timers started are not instantly
  // declared dead.
  last_parent_heartbeat_ = sim.now();
  children_.touch_all(sim.now());

  const auto first_hb = static_cast<sim::Time>(
      rng_.uniform(0.0, static_cast<double>(config_.heartbeat_period)));
  auto schedule_hb = std::make_shared<util::UniqueFunction<void()>>();
  *schedule_hb = [this, epoch, weak = std::weak_ptr(schedule_hb)] {
    if (!alive_ || life_epoch_ != epoch) return;
    on_heartbeat_timer();
    if (auto tick = weak.lock()) {
      network_.simulator().schedule_after(config_.heartbeat_period,
                                          [tick] { (*tick)(); });
    }
  };
  obs::ScopedProfCategory prof_tag(obs::ProfCategory::kTimerMaintenance);
  sim.schedule_after(first_hb, [tick = std::move(schedule_hb)] { (*tick)(); });

  auto schedule_check = std::make_shared<util::UniqueFunction<void()>>();
  *schedule_check = [this, epoch, weak = std::weak_ptr(schedule_check)] {
    if (!alive_ || life_epoch_ != epoch) return;
    on_failure_check_timer();
    if (auto tick = weak.lock()) {
      network_.simulator().schedule_after(config_.heartbeat_period,
                                          [tick] { (*tick)(); });
    }
  };
  // Offset the sweep by half a period so checks interleave heartbeats.
  sim.schedule_after(first_hb + config_.heartbeat_period / 2,
                     [tick = std::move(schedule_check)] { (*tick)(); });
}

void RoadsServer::leave() {
  if (!alive_) return;
  sim::TraceSpan trace_root(network_, id_, "leave");
  obs::ScopedProfCategory prof_tag(obs::ProfCategory::kMaintenance);
  if (parent_) {
    send_to_server(*parent_, msg::leave_notice(), sim::Channel::kMaintenance,
                   [child = id_](RoadsServer& p) {
                     p.handle_leave_from_child(child);
                   });
  }
  for (const auto child : children_.ids()) {
    send_to_server(child, msg::leave_notice(), sim::Channel::kMaintenance,
                   [self = id_](RoadsServer& c) {
                     c.handle_leave_from_parent(self);
                   });
  }
  trace_event(obs::TraceKind::kLeave, parent_.value_or(id_));
  alive_ = false;
  ++life_epoch_;
  network_.set_node_up(id_, false);
  // Queued queries die with the server; their clients time out.
  query_queue_.clear();
  active_queries_ = 0;
}

void RoadsServer::fail() {
  alive_ = false;
  ++life_epoch_;
  network_.set_node_up(id_, false);
  query_queue_.clear();
  active_queries_ = 0;
}

void RoadsServer::restart(sim::NodeId seed) {
  if (alive_) return;
  // Soft state died with the process; records and attachments are the
  // durable part (the paper's soft-state summaries regenerate).
  parent_.reset();
  root_path_ = hierarchy::RootPath({id_});
  children_.clear();
  child_summaries_.clear();
  pushed_digests_.clear();
  parent_push_digest_.reset();
  last_pushed_stats_ = hierarchy::BranchStats{};
  branch_summary_.reset();
  replicas_.clear();
  root_children_.clear();
  recovery_candidates_.clear();
  join_ = JoinState{};
  refresh_round_ = 0;
  query_queue_.clear();
  active_queries_ = 0;
  query_cache_.clear();
  negative_cache_.clear();
  state_stamp_dirty_ = true;

  alive_ = true;
  ++life_epoch_;
  network_.set_node_up(id_, true);
  last_parent_heartbeat_ = network_.simulator().now();
  timers_started_ = false;
  start_timers();

  if (seed == id_) {
    become_root();
    return;
  }
  trace_event(obs::TraceKind::kRejoin, seed);
  rejoins_.inc();
  // A restart while the seed is unreachable (crashed, or across an
  // active partition) must not strand us as a permanent lonely root:
  // keep the seed as a recovery contact so the maintenance timer keeps
  // retrying until the overlay re-merges.
  recovery_candidates_.push_back(seed);
  start_join(seed, [this](bool ok) {
    if (!ok) become_root();  // recovery_candidates_ keeps us retrying
  });
}

// --------------------------------------------------------------------------
// Resource attachment
// --------------------------------------------------------------------------

void RoadsServer::attach_owner(std::shared_ptr<ResourceOwner> owner,
                               ExportMode mode) {
  Attachment att;
  att.owner = owner;
  att.mode = mode;
  if (mode == ExportMode::kDetailedRecords) {
    // The owner ships raw records; remote exports cost update traffic.
    std::uint64_t bytes = 0;
    for (const auto& r : owner->store().snapshot()) {
      bytes += r.wire_size();
      store_.insert(r);
    }
    if (owner->node() != id_) {
      network_.send(owner->node(), id_, bytes, sim::Channel::kUpdate, [] {});
    }
  } else {
    att.summary = std::make_shared<const summary::ResourceSummary>(
        owner->export_summary(config_.summary));
    if (owner->node() != id_) {
      network_.send(owner->node(), id_, msg::summary_update(*att.summary),
                    sim::Channel::kUpdate, [] {});
    }
  }
  attachments_.push_back(std::move(att));
}

void RoadsServer::reexport_owner(record::OwnerId owner_id) {
  for (auto& att : attachments_) {
    if (att.owner->id() != owner_id) continue;
    if (att.mode == ExportMode::kDetailedRecords) {
      // Replace this owner's records wholesale (soft-state refresh).
      std::uint64_t bytes = 0;
      for (const auto& r : store_.snapshot()) {
        if (r.owner() == owner_id) store_.erase(r.id());
      }
      for (const auto& r : att.owner->store().snapshot()) {
        bytes += r.wire_size();
        store_.insert(r);
      }
      if (att.owner->node() != id_) {
        network_.send(att.owner->node(), id_, bytes, sim::Channel::kUpdate,
                      [] {});
      }
    } else {
      att.summary = std::make_shared<const summary::ResourceSummary>(
          att.owner->export_summary(config_.summary));
      if (att.owner->node() != id_) {
        network_.send(att.owner->node(), id_, msg::summary_update(*att.summary),
                      sim::Channel::kUpdate, [] {});
      }
    }
    return;
  }
}

// --------------------------------------------------------------------------
// Summary protocol
// --------------------------------------------------------------------------

void RoadsServer::refresh_attachment_summaries(bool keepalive) {
  for (auto& att : attachments_) {
    if (att.mode != ExportMode::kSummaryOnly) continue;
    const auto version = att.owner->store().version();
    if (!keepalive && att.summary && version == att.exported_version) {
      // Owner data untouched since the last export: skip the recompute
      // and the wire round-trip entirely.
      summary_refresh_skipped_.inc();
      continue;
    }
    auto fresh = std::make_shared<const summary::ResourceSummary>(
        att.owner->export_summary(config_.summary));
    const auto digest = fresh->digest();
    const bool changed = !att.summary || digest != att.exported_digest;
    att.summary = std::move(fresh);
    att.exported_version = version;
    att.exported_digest = digest;
    if (att.owner->node() != id_) {
      if (keepalive || changed) {
        network_.send(att.owner->node(), id_,
                      msg::summary_update(*att.summary), sim::Channel::kUpdate,
                      [] {});
      } else {
        summary_push_suppressed_.inc();
      }
    }
  }
}

SummaryPtr RoadsServer::compute_local_summary() {
  summary::ResourceSummary local;
  if (config_.incremental_refresh) {
    const auto refresh = store_.refresh_summary(store_summary_,
                                                config_.summary);
    if (refresh.unchanged) summary_refresh_skipped_.inc();
    if (refresh.full_rebuild) summary_full_rebuilds_.inc();
    if (refresh.delta_slots > 0) summary_delta_slots_.inc(refresh.delta_slots);
    local = store_summary_;  // copy: attachment merges must not pollute it
  } else {
    local = store_.summarize(config_.summary);
  }
  for (const auto& att : attachments_) {
    if (att.mode == ExportMode::kSummaryOnly && att.summary) {
      local.merge(*att.summary);
      summary_merges_.inc();
    }
  }
  return std::make_shared<const summary::ResourceSummary>(std::move(local));
}

SummaryPtr RoadsServer::compute_branch_summary() const {
  summary::ResourceSummary branch =
      local_summary_ ? *local_summary_
                     : summary::ResourceSummary(schema_, config_.summary);
  for (const auto& [child, summary] : child_summaries_) {
    if (summary && children_.has(child)) {
      branch.merge(*summary);
      summary_merges_.inc();
    }
  }
  return std::make_shared<const summary::ResourceSummary>(std::move(branch));
}

void RoadsServer::refresh_summaries() {
  if (!alive_) return;
  obs::ScopedTimer timer(refresh_us_);
  // Roots a causal tree: the parent push, sibling forwards and replica
  // cascade triggered by this wave all chain under one span.
  sim::TraceSpan trace_root(network_, id_, "summary_refresh");
  // Round r is a keepalive wave when r % K == 0 (the first round always
  // is), so every soft-state TTL downstream is renewed at least every
  // K periods. K == 0 makes every round a keepalive: suppression off.
  const auto k = config_.summary_keepalive_rounds;
  const bool keepalive = k == 0 || refresh_round_ % k == 0;
  ++refresh_round_;

  refresh_attachment_summaries(keepalive);
  local_summary_ = compute_local_summary();
  branch_summary_ = compute_branch_summary();

  // Bottom-up aggregation (§III-B); silent when the branch digest has
  // not moved since the last push.
  if (parent_) {
    const auto digest = branch_summary_->digest();
    if (keepalive || parent_push_digest_ != digest) {
      parent_push_digest_ = digest;
      const auto stats = children_.aggregate();
      last_pushed_stats_ = stats;
      send_to_server(
          *parent_, msg::summary_update(*branch_summary_),
          sim::Channel::kUpdate,
          [child = id_, stats, s = branch_summary_, keepalive](RoadsServer& p) {
            p.handle_child_summary(child, stats, s, keepalive);
          });
    } else {
      summary_push_suppressed_.inc();
    }
  }

  // Top-down replication (§III-C): own branch + local summaries flow to
  // every descendant with the ancestor role; direct children see us one
  // level up.
  if (config_.overlay_enabled) {
    push_replica_to_children({id_, overlay::SummaryKind::kBranch,
                              overlay::ReplicaRole::kAncestor, 1},
                             branch_summary_, keepalive);
    push_replica_to_children({id_, overlay::SummaryKind::kLocal,
                              overlay::ReplicaRole::kAncestor, 1},
                             local_summary_, keepalive);
  }
}

void RoadsServer::handle_child_summary(sim::NodeId child,
                                       hierarchy::BranchStats stats,
                                       SummaryPtr branch, bool keepalive) {
  if (!children_.has(child)) return;  // stale update from a removed child
  children_.update_stats(child, stats);
  children_.update_heartbeat(child, network_.simulator().now());
  children_.update_summary(child, network_.simulator().now());
  child_summaries_[child] = branch;
  mark_summary_state_dirty();
  forward_child_summary_to_siblings(child, branch, keepalive);
  push_stats_up();
}

void RoadsServer::forward_child_summary_to_siblings(sim::NodeId child,
                                                    const SummaryPtr& summary,
                                                    bool keepalive) {
  if (!summary || !config_.overlay_enabled) return;
  const overlay::ReplicaSpec spec{child, overlay::SummaryKind::kBranch,
                                  overlay::ReplicaRole::kSibling, 1};
  // Replica traffic splits off the generic kUpdate channel default.
  obs::ScopedProfCategory prof_tag(obs::ProfCategory::kReplicaCascade);
  const auto digest = summary->digest();
  for (const auto sibling : children_.ids()) {
    if (sibling == child) continue;
    if (!note_push(sibling, child, static_cast<std::uint8_t>(spec.kind),
                   digest, keepalive)) {
      summary_push_suppressed_.inc();
      continue;
    }
    send_to_server(sibling, msg::replica_push(*summary), sim::Channel::kUpdate,
                   [spec, summary, keepalive](RoadsServer& s) {
                     s.handle_replica(spec, summary, keepalive);
                   });
  }
}

void RoadsServer::handle_replica(overlay::ReplicaSpec spec, SummaryPtr summary,
                                 bool keepalive) {
  replicas_.put(spec, summary, network_.simulator().now());
  mark_summary_state_dirty();
  // Cascade down; a sibling of my parent-level sender becomes an
  // ancestor-sibling for my descendants, one level further from their
  // common ancestor.
  overlay::ReplicaSpec down = spec;
  if (down.role == overlay::ReplicaRole::kSibling) {
    down.role = overlay::ReplicaRole::kAncestorSibling;
  }
  if (down.levels_up < 255) ++down.levels_up;
  push_replica_to_children(down, summary, keepalive);
}

void RoadsServer::push_replica_to_children(const overlay::ReplicaSpec& spec,
                                           const SummaryPtr& summary,
                                           bool keepalive) {
  if (!summary) return;
  obs::ScopedProfCategory prof_tag(obs::ProfCategory::kReplicaCascade);
  const auto digest = summary->digest();
  for (const auto child : children_.ids()) {
    if (!note_push(child, spec.origin, static_cast<std::uint8_t>(spec.kind),
                   digest, keepalive)) {
      summary_push_suppressed_.inc();
      continue;
    }
    send_to_server(child, msg::replica_push(*summary), sim::Channel::kUpdate,
                   [spec, summary, keepalive](RoadsServer& c) {
                     c.handle_replica(spec, summary, keepalive);
                   });
  }
}

bool RoadsServer::note_push(sim::NodeId dest, sim::NodeId origin,
                            std::uint8_t kind, std::uint64_t digest,
                            bool keepalive) {
  auto& streams = pushed_digests_[dest];
  auto [it, inserted] = streams.try_emplace({origin, kind}, digest);
  if (inserted || keepalive || it->second != digest) {
    it->second = digest;
    return true;
  }
  return false;
}

std::uint64_t RoadsServer::stored_summary_bytes() const {
  std::uint64_t total = replicas_.stored_bytes();
  for (const auto& [_, s] : child_summaries_) {
    if (s) total += s->wire_size();
  }
  if (local_summary_) total += local_summary_->wire_size();
  if (branch_summary_) total += branch_summary_->wire_size();
  return total;
}

// --------------------------------------------------------------------------
// Join protocol
// --------------------------------------------------------------------------

void RoadsServer::start_join(sim::NodeId seed,
                             util::UniqueFunction<void(bool)> on_complete) {
  join_ = JoinState{};
  join_.active = true;
  join_.current = seed;
  join_.on_complete = std::move(on_complete);
  // Roots the join negotiation's causal tree (request, redirects and
  // accept/backtrack responses chain under it).
  sim::TraceSpan trace_root(network_, id_, "join");
  send_join_request(seed);
}

void RoadsServer::send_join_request(sim::NodeId target) {
  const auto seq = ++join_.request_seq;
  send_to_server(target, msg::join_request(join_.excluded.size()),
                 sim::Channel::kControl,
                 [joiner = id_, excluded = join_.excluded](RoadsServer& s) {
                   s.handle_join_request(joiner, excluded);
                 });
  // Dead targets never answer; give up after the timeout and treat it
  // like an unwilling branch. The epoch guard keeps a timeout armed
  // before a crash from firing into the restarted server's join state
  // (request_seq restarts from zero, so seq alone could collide).
  obs::ScopedProfCategory prof_tag(obs::ProfCategory::kJoin);
  network_.simulator().schedule_after(
      kJoinTimeout, [this, target, seq, epoch = life_epoch_] {
    if (!alive_ || life_epoch_ != epoch || !join_.active ||
        join_.request_seq != seq) return;
    ROADS_DEBUG << "server " << id_ << ": join request to " << target
                << " timed out";
    handle_join_response(target, JoinOutcome::kBacktrack, 0,
                         hierarchy::RootPath{});
  });
}

void RoadsServer::handle_join_request(sim::NodeId joiner,
                                      std::vector<sim::NodeId> excluded) {
  JoinOutcome outcome;
  sim::NodeId redirect_to = 0;
  // Loop avoidance: never adopt an ancestor of ourselves — checked both
  // against the root path (§III-A) and the current parent directly, so
  // a two-cycle cannot form even while root paths are stale after
  // churn.
  if (root_path_.contains(joiner) || (parent_ && *parent_ == joiner)) {
    outcome = JoinOutcome::kBacktrack;
  } else {
    // Proximity policy steers toward the child closest to the joiner
    // in the delay space.
    const hierarchy::JoinPolicy::LatencyFn latency =
        [this, joiner](sim::NodeId child) {
          return static_cast<double>(network_.latency(joiner, child));
        };
    const auto decision =
        join_policy_.decide(children_, excluded, rng_, latency);
    if (!decision) {
      outcome = JoinOutcome::kBacktrack;
    } else if (decision->accept) {
      outcome = JoinOutcome::kAccepted;
      // Idempotent: a joiner may retry after a lost/late response while
      // we already registered it.
      if (!children_.has(joiner)) {
        children_.add(joiner, network_.simulator().now());
      } else {
        children_.update_heartbeat(joiner, network_.simulator().now());
      }
      push_stats_up();
    } else {
      outcome = JoinOutcome::kRedirect;
      redirect_to = decision->descend_to;
    }
  }
  send_to_server(joiner, msg::join_response(root_path_.length()),
                 sim::Channel::kControl,
                 [responder = id_, outcome, redirect_to,
                  path = root_path_](RoadsServer& j) {
                   j.handle_join_response(responder, outcome, redirect_to,
                                          path);
                 });
}

void RoadsServer::handle_join_response(sim::NodeId responder,
                                       JoinOutcome outcome,
                                       sim::NodeId redirect_to,
                                       hierarchy::RootPath responder_path) {
  if (!join_.active || responder != join_.current) return;  // stale
  ++join_.request_seq;  // disarm the pending timeout

  switch (outcome) {
    case JoinOutcome::kAccepted: {
      parent_ = responder;
      root_path_ = hierarchy::RootPath::extend(responder_path, id_);
      last_parent_heartbeat_ = network_.simulator().now();
      recovery_candidates_.clear();  // back in a tree
      joins_.inc();
      trace_event(obs::TraceKind::kJoin, responder,
                  static_cast<double>(root_path_.length()));
      // Tell the new parent our real branch shape right away so join
      // steering stays accurate, and hand it our branch summary if we
      // carry a subtree from before a rejoin.
      last_pushed_stats_ = hierarchy::BranchStats{};
      parent_push_digest_.reset();  // new parent: never suppress its first push
      push_stats_up();
      if (branch_summary_) {
        const auto stats = children_.aggregate();
        parent_push_digest_ = branch_summary_->digest();
        send_to_server(*parent_, msg::summary_update(*branch_summary_),
                       sim::Channel::kUpdate,
                       [child = id_, stats,
                        s = branch_summary_](RoadsServer& p) {
                         p.handle_child_summary(child, stats, s);
                       });
      }
      finish_join(true);
      return;
    }
    case JoinOutcome::kRedirect: {
      join_.descended.push_back(join_.current);
      join_.current = redirect_to;
      send_join_request(redirect_to);
      return;
    }
    case JoinOutcome::kBacktrack: {
      join_.excluded.push_back(join_.current);
      if (!join_.descended.empty()) {
        join_.current = join_.descended.back();
        join_.descended.pop_back();
        send_join_request(join_.current);
      } else if (!join_.fallbacks.empty()) {
        join_.current = join_.fallbacks.front();
        join_.fallbacks.erase(join_.fallbacks.begin());
        join_.excluded.clear();
        send_join_request(join_.current);
      } else {
        finish_join(false);
      }
      return;
    }
  }
}

void RoadsServer::finish_join(bool success) {
  join_.active = false;
  if (join_.on_complete) {
    auto cb = std::move(join_.on_complete);
    join_.on_complete = nullptr;
    cb(success);
  }
}

void RoadsServer::push_stats_up() {
  if (!parent_) return;
  const auto stats = children_.aggregate();
  if (stats == last_pushed_stats_) return;
  last_pushed_stats_ = stats;
  send_to_server(*parent_, msg::heartbeat_up(), sim::Channel::kControl,
                 [child = id_, stats](RoadsServer& p) {
                   p.handle_stats_update(child, stats);
                 });
}

void RoadsServer::handle_stats_update(sim::NodeId child,
                                      hierarchy::BranchStats stats) {
  if (!children_.has(child)) return;
  children_.update_stats(child, stats);
  children_.update_heartbeat(child, network_.simulator().now());
  push_stats_up();
}

// --------------------------------------------------------------------------
// Maintenance
// --------------------------------------------------------------------------

void RoadsServer::on_heartbeat_timer() {
  sim::TraceSpan trace_root(network_, id_, "heartbeat_wave");
  if (parent_) {
    const auto stats = children_.aggregate();
    send_to_server(*parent_, msg::heartbeat_up(), sim::Channel::kMaintenance,
                   [child = id_, stats](RoadsServer& p) {
                     p.handle_heartbeat_up(child, stats);
                   });
  }
  const std::vector<sim::NodeId> root_children =
      is_root() ? children_.ids() : std::vector<sim::NodeId>{};
  for (const auto child : children_.ids()) {
    send_to_server(
        child,
        msg::heartbeat_down(root_path_.length(), root_children.size()),
        sim::Channel::kMaintenance,
        [from = id_, path = root_path_, root_children](RoadsServer& c) {
          c.handle_heartbeat_down(from, path, root_children);
        });
  }
}

void RoadsServer::handle_heartbeat_up(sim::NodeId child,
                                      hierarchy::BranchStats stats) {
  if (!children_.has(child)) return;
  children_.update_heartbeat(child, network_.simulator().now());
  children_.update_stats(child, stats);
}

void RoadsServer::handle_heartbeat_down(
    sim::NodeId from, hierarchy::RootPath path,
    std::vector<sim::NodeId> root_children) {
  if (!parent_ || *parent_ != from) return;  // stale
  last_parent_heartbeat_ = network_.simulator().now();
  // Root paths ride on heartbeats (§III-A): refresh ours.
  root_path_ = hierarchy::RootPath::extend(path, id_);
  if (!root_children.empty()) root_children_ = std::move(root_children);
}

void RoadsServer::on_failure_check_timer() {
  sim::TraceSpan trace_root(network_, id_, "failure_check");
  const auto now = network_.simulator().now();
  const sim::Time limit =
      config_.heartbeat_period * config_.heartbeat_miss_limit;

  // Children that went silent.
  for (const auto child : children_.expired(now - limit)) {
    ROADS_INFO << "server " << id_ << ": child " << child << " timed out";
    heartbeat_misses_.inc();
    trace_event(obs::TraceKind::kHeartbeatMiss, child);
    children_.remove(child);
    child_summaries_.erase(child);
    pushed_digests_.erase(child);
    mark_summary_state_dirty();
    push_stats_up();
  }

  // Parent that went silent.
  if (parent_ && now - last_parent_heartbeat_ > limit) {
    ROADS_INFO << "server " << id_ << ": parent " << *parent_
               << " timed out";
    heartbeat_misses_.inc();
    trace_event(obs::TraceKind::kHeartbeatMiss, *parent_);
    parent_lost();
  }

  // Partition recovery: a root that got here by failed rejoin keeps
  // retrying its old contacts so partitions re-merge when possible.
  if (is_root() && !recovery_candidates_.empty() && !join_.active) {
    join_ = JoinState{};
    join_.active = true;
    join_.current = recovery_candidates_.front();
    join_.fallbacks.assign(recovery_candidates_.begin() + 1,
                           recovery_candidates_.end());
    join_.on_complete = [this](bool ok) {
      if (!ok) become_root();  // stay a partition root; retry later
    };
    send_join_request(join_.current);
  }

  if (replicas_.sweep(now) > 0) mark_summary_state_dirty();
}

void RoadsServer::parent_lost() {
  const auto old_path = root_path_;
  const auto old_parent = parent_;
  const bool parent_was_root =
      parent_ && old_path.length() >= 2 && old_path.root() == *parent_;
  parent_.reset();
  parent_push_digest_.reset();

  if (parent_was_root) {
    // Root election (§III-A): the root's children elect the one with
    // the smallest id, learned from the root's heartbeat children list.
    std::vector<sim::NodeId> electorate = root_children_;
    electorate.push_back(id_);
    const sim::NodeId elected =
        *std::min_element(electorate.begin(), electorate.end());
    if (elected == id_) {
      ROADS_INFO << "server " << id_ << ": elected new root";
      trace_event(obs::TraceKind::kRootElection, id_);
      become_root();
      // The detection may have been a false positive (lost heartbeats);
      // keep the old root as a recovery contact so a spurious
      // self-election re-merges instead of splitting the tree.
      recovery_candidates_.clear();
      if (old_parent) recovery_candidates_.push_back(*old_parent);
      return;
    }
    join_ = JoinState{};
    join_.active = true;
    join_.current = elected;
    // Other electorate members double as fallbacks if the winner died;
    // if every candidate is gone, stand up as root and keep retrying
    // (partition recovery).
    std::sort(electorate.begin(), electorate.end());
    for (const auto n : electorate) {
      if (n != elected && n != id_) join_.fallbacks.push_back(n);
    }
    recovery_candidates_.clear();
    for (const auto n : electorate) {
      if (n != id_) recovery_candidates_.push_back(n);
    }
    join_.on_complete = [this](bool ok) {
      if (!ok) become_root();  // recovery_candidates_ keeps us retrying
    };
    rejoins_.inc();
    trace_event(obs::TraceKind::kRejoin, elected);
    send_join_request(elected);
    return;
  }

  // Rejoin starting at the grandparent, then one level up at a time
  // (§III-A Hierarchy Maintenance).
  auto candidates = old_path.rejoin_candidates();
  if (candidates.empty()) {
    // No ancestors known; become root of our own partition.
    become_root();
    return;
  }
  join_ = JoinState{};
  join_.active = true;
  join_.current = candidates.front();
  join_.fallbacks.assign(candidates.begin() + 1, candidates.end());
  recovery_candidates_ = candidates;
  join_.on_complete = [this](bool ok) {
    if (!ok) become_root();  // recovery_candidates_ keeps us retrying
  };
  rejoins_.inc();
  trace_event(obs::TraceKind::kRejoin, join_.current);
  send_join_request(join_.current);
}

void RoadsServer::handle_leave_from_child(sim::NodeId child) {
  if (!children_.has(child)) return;
  children_.remove(child);
  child_summaries_.erase(child);
  pushed_digests_.erase(child);
  mark_summary_state_dirty();
  push_stats_up();
}

void RoadsServer::handle_leave_from_parent(sim::NodeId parent) {
  if (!parent_ || *parent_ != parent) return;
  parent_lost();
}

// --------------------------------------------------------------------------
// Query evaluation
// --------------------------------------------------------------------------

void RoadsServer::handle_query(std::shared_ptr<RoadsClient> client,
                               QueryMode mode) {
  if (!alive_) return;
  query_hops_.inc();
  client->on_arrival(id_);

  // Negative cache first, before admission: a remembered summary-prune
  // miss is answered empty at lookup cost without occupying a slot, so
  // false-positive storms (stale summaries under a staleness attack)
  // cannot queue out genuine queries. Start-mode queries never false-
  // positive, so only forwarded modes are checked.
  if (config_.query_cache_enabled && mode != QueryMode::kStart &&
      negative_cache_.contains(cache_key(*client, mode),
                               network_.simulator().now())) {
    cache_neg_hits_.inc();
    query_false_positives_.inc();
    const auto proc = network_.begin_span(id_, "proc");
    network_.simulator().schedule_after(
        config_.query_cache_hit_delay, [this, client, proc] {
          if (!alive_) {
            network_.end_span(proc);
            return;
          }
          sim::ScopedTraceContext trace_scope(network_, proc);
          network_.send(id_, client->location(), msg::redirect_reply(0),
                        sim::Channel::kQuery, [client, server = id_] {
                          client->on_reply(
                              server,
                              std::vector<std::pair<sim::NodeId, QueryMode>>{},
                              0, false);
                        });
          network_.end_span(proc);
        });
    return;
  }

  // Admission control. limit == 0 keeps the historical infinite-server
  // model: every query is admitted immediately (bit-identical replay).
  const auto limit = config_.query_concurrency_limit;
  if (limit == 0) {
    begin_query(std::move(client), mode);
    return;
  }
  if (active_queries_ < limit) {
    ++active_queries_;
    begin_query(std::move(client), mode);
  } else if (query_queue_.size() < config_.query_queue_limit) {
    query_queue_.push_back(QueuedQuery{std::move(client), mode});
  } else {
    shed_query(client);
  }
}

void RoadsServer::begin_query(std::shared_ptr<RoadsClient> client,
                              QueryMode mode) {
  // The processing span opens at evaluation start so admission queueing
  // time is not attributed to per-hop processing. The deferred closure
  // re-enters the captured context: raw schedule_after timers run
  // outside any delivery scope.
  const auto proc = network_.begin_span(id_, "proc");
  if (config_.query_cache_enabled) {
    if (auto entry = query_cache_.find(cache_key(*client, mode))) {
      cache_hits_.inc();
      // A hit holds its slot only for the lookup/assembly delay — the
      // source of the cache's sustainable-QPS win.
      network_.simulator().schedule_after(
          config_.query_cache_hit_delay,
          [this, client, entry = std::move(entry), proc] {
            if (!alive_) {
              network_.end_span(proc);
              return;
            }
            sim::ScopedTraceContext trace_scope(network_, proc);
            serve_cached(client, entry, proc);
            network_.end_span(proc);
            finish_query();
          });
      return;
    }
    cache_misses_.inc();
  }
  network_.simulator().schedule_after(
      config_.query_processing_delay, [this, client, mode, proc] {
        if (!alive_) {
          network_.end_span(proc);
          return;
        }
        evaluate_query(client, mode, proc);
        finish_query();
      });
}

void RoadsServer::evaluate_query(const std::shared_ptr<RoadsClient>& client,
                                 QueryMode mode,
                                 const obs::TraceContext& proc) {
  sim::ScopedTraceContext trace_scope(network_, proc);
  const auto& q = client->query();
  std::vector<std::pair<sim::NodeId, QueryMode>> targets;
  std::uint64_t shortcut_hits = 0;

  // Local data: this server's own store...
  store::QueryStats stats{};
  const auto local_ids = store_.query(q, &stats);
  std::size_t local_matches = local_ids.size();
  std::vector<record::ResourceRecord> local_records;
  if (client->collect_results()) {
    local_records.reserve(local_ids.size());
    for (const auto rid : local_ids) {
      local_records.push_back(store_.get(rid));
    }
  }
  // ...plus summary-only owner attachments. Co-located owners
  // answer through this server (policy applied); remote owners
  // are redirect targets probed in local-only mode.
  for (const auto& att : attachments_) {
    if (att.mode != ExportMode::kSummaryOnly || !att.summary) continue;
    if (!att.summary->matches(q)) continue;
    if (att.owner->node() == id_) {
      if (client->collect_results()) {
        auto records = att.owner->answer(client->principal(), q);
        local_matches += records.size();
        for (auto& r : records) local_records.push_back(std::move(r));
      } else {
        local_matches += att.owner->answer_count(client->principal(), q);
      }
    } else {
      targets.emplace_back(att.owner->node(), QueryMode::kLocalOnly);
    }
  }

  // Branch descent through matching children (§III-B).
  if (mode != QueryMode::kLocalOnly) {
    for (const auto& [child, summary] : child_summaries_) {
      if (summary && children_.has(child) && summary->matches(q)) {
        targets.emplace_back(child, QueryMode::kBranch);
      }
    }
  }

  // Overlay shortcuts, only from the start server (§III-C):
  // sibling / ancestor-sibling branches are descent entry points;
  // matching ancestor locals are probed local-only.
  if (mode == QueryMode::kStart) {
    // The client's scope limits how far up the hierarchy the
    // shortcuts may reach (§III-C's widening control).
    const unsigned scope = client->scope();
    for (const auto* r : replicas_.matching(q, overlay::SummaryKind::kBranch)) {
      if (r->spec.role != overlay::ReplicaRole::kAncestor &&
          r->spec.levels_up <= scope) {
        targets.emplace_back(r->spec.origin, QueryMode::kBranch);
        overlay_shortcut_hits_.inc();
        ++shortcut_hits;
      }
    }
    for (const auto* r : replicas_.matching(q, overlay::SummaryKind::kLocal)) {
      if (r->spec.role == overlay::ReplicaRole::kAncestor &&
          r->spec.levels_up <= scope) {
        targets.emplace_back(r->spec.origin, QueryMode::kLocalOnly);
        overlay_shortcut_hits_.inc();
        ++shortcut_hits;
      }
    }
  }

  // A summary somewhere matched this query and steered it here,
  // yet the server has nothing and nowhere further to send it —
  // the false-positive redirect cost of approximate summaries.
  const bool false_positive =
      mode != QueryMode::kStart && local_matches == 0 && targets.empty();
  if (false_positive) {
    query_false_positives_.inc();
    // Pinned to the processing span: the critical-path analyzer
    // marks the transit that fed this hop as detour time.
    trace_event(obs::TraceKind::kQueryFalsePositive, client->location(), 0.0,
                proc.span);
  }

  const bool results_pending = client->collect_results() && local_matches > 0;
  std::uint64_t record_bytes = 0;
  sim::Time service = 0;
  if (results_pending) {
    for (const auto& r : local_records) record_bytes += r.wire_size();
    stats.matches = local_records.size();
    service =
        store::service_time_us(config_.service_model, stats, record_bytes);
  }

  // Cache fill, keyed by the state stamp AT EVALUATION TIME (the state
  // the reply was computed from — a push that landed while this query
  // sat in the processing delay keys the entry to the new state).
  if (config_.query_cache_enabled) {
    const auto key = cache_key(*client, mode);
    if (false_positive) {
      negative_cache_.insert(key, network_.simulator().now());
    }
    CachedReply entry;
    entry.targets = targets;
    entry.local_matches = local_matches;
    entry.results_pending = results_pending;
    entry.records = local_records;
    entry.record_bytes = record_bytes;
    entry.service_us = service;
    entry.false_positive = false_positive;
    entry.shortcut_hits = shortcut_hits;
    const auto evicted = query_cache_.insert(key, std::move(entry));
    if (evicted > 0) cache_evicted_.inc(evicted);
  }

  // Size the reply before the capture moves the target list out.
  const auto reply_bytes = msg::redirect_reply(targets.size());
  network_.send(id_, client->location(), reply_bytes, sim::Channel::kQuery,
                [client, server = id_, targets = std::move(targets),
                 local_matches, results_pending]() mutable {
                  client->on_reply(server, std::move(targets), local_matches,
                                   results_pending);
                });

  if (results_pending) {
    // Retrieval time is its own span (child of proc) so response
    // critical paths separate evaluation from service delay.
    const auto svc = network_.begin_span(id_, "service");
    network_.simulator().schedule_after(
        service, [this, client, record_bytes, svc,
                  records = std::move(local_records)]() mutable {
          if (!alive_) {
            network_.end_span(svc);
            return;
          }
          sim::ScopedTraceContext svc_scope(network_, svc);
          network_.send(id_, client->location(), msg::results(record_bytes),
                        sim::Channel::kResult,
                        [client, server = id_,
                         records = std::move(records)]() mutable {
                          client->on_results(server, std::move(records));
                        });
          network_.end_span(svc);
        });
  }
  network_.end_span(proc);
}

void RoadsServer::serve_cached(const std::shared_ptr<RoadsClient>& client,
                               const std::shared_ptr<const CachedReply>& entry,
                               const obs::TraceContext& proc) {
  // Replay the accounting the cold evaluation would have produced, so
  // the §V meters (fp rate, shortcut usage) are cache-transparent.
  if (entry->false_positive) {
    query_false_positives_.inc();
    trace_event(obs::TraceKind::kQueryFalsePositive, client->location(), 0.0,
                proc.span);
  }
  if (entry->shortcut_hits > 0) overlay_shortcut_hits_.inc(entry->shortcut_hits);

  network_.send(id_, client->location(),
                msg::redirect_reply(entry->targets.size()), sim::Channel::kQuery,
                [client, server = id_, entry] {
                  client->on_reply(server, entry->targets,
                                   entry->local_matches,
                                   entry->results_pending);
                });

  if (entry->results_pending) {
    const auto svc = network_.begin_span(id_, "service");
    network_.simulator().schedule_after(
        entry->service_us, [this, client, entry, svc] {
          if (!alive_) {
            network_.end_span(svc);
            return;
          }
          sim::ScopedTraceContext svc_scope(network_, svc);
          network_.send(id_, client->location(),
                        msg::results(entry->record_bytes), sim::Channel::kResult,
                        [client, server = id_, entry] {
                          client->on_results(server, entry->records);
                        });
          network_.end_span(svc);
        });
  }
}

void RoadsServer::finish_query() {
  if (config_.query_concurrency_limit == 0) return;
  if (active_queries_ > 0) --active_queries_;
  while (!query_queue_.empty() &&
         active_queries_ < config_.query_concurrency_limit) {
    auto next = std::move(query_queue_.front());
    query_queue_.pop_front();
    ++active_queries_;
    begin_query(std::move(next.client), next.mode);
  }
}

void RoadsServer::shed_query(const std::shared_ptr<RoadsClient>& client) {
  cache_sheds_.inc();
  network_.send(id_, client->location(), msg::overload_reply(),
                sim::Channel::kQuery, [client, server = id_] {
                  client->on_overload(server);
                });
}

std::uint64_t RoadsServer::cache_key(const RoadsClient& client,
                                     QueryMode mode) const {
  util::Fnv1a h;
  h.add(client.query().digest());
  h.add(static_cast<std::uint64_t>(mode));
  h.add(static_cast<std::uint64_t>(client.scope()));
  h.add(static_cast<std::uint64_t>(client.principal()));
  h.add(static_cast<std::uint64_t>(client.collect_results() ? 1 : 0));
  h.add(summary_state_stamp());
  return h.value();
}

std::uint64_t RoadsServer::summary_state_stamp() const {
  if (state_stamp_dirty_) {
    // The structural fold (child summaries + replicas) is the expensive
    // part — ResourceSummary::digest() walks every slot — so it is
    // cached behind the dirty flag. Keepalive pushes that re-deliver
    // unchanged digests recompute the same fold: the cache stays warm.
    util::Fnv1a fold;
    for (const auto& [child, summary] : child_summaries_) {
      if (!summary || !children_.has(child)) continue;
      fold.add(static_cast<std::uint64_t>(child));
      fold.add(summary->digest());
    }
    for (const auto* r : replicas_.all()) {
      fold.add(static_cast<std::uint64_t>(r->spec.origin));
      fold.add(static_cast<std::uint64_t>(r->spec.kind));
      fold.add(static_cast<std::uint64_t>(r->spec.role));
      fold.add(static_cast<std::uint64_t>(r->spec.levels_up));
      if (r->summary) fold.add(r->summary->digest());
    }
    state_stamp_fold_ = fold.value();
    state_stamp_dirty_ = false;
  }
  // Live versions are folded fresh on every lookup: record mutations —
  // including out-of-band ones a staleness attack performs directly on
  // owner stores — must invalidate without any protocol message.
  util::Fnv1a h;
  h.add(state_stamp_fold_);
  h.add(store_.version());
  for (const auto& att : attachments_) {
    if (att.mode != ExportMode::kSummaryOnly) continue;
    h.add(static_cast<std::uint64_t>(att.owner->node()));
    h.add(att.owner->store().version());
    h.add(att.exported_digest);
  }
  return h.value();
}

void RoadsServer::mark_summary_state_dirty() {
  if (state_stamp_dirty_) return;
  state_stamp_dirty_ = true;
  // Counts state transitions that (may) invalidate cached replies; an
  // upper bound on actual entry invalidation since an unchanged-digest
  // push recomputes an identical fold.
  if (config_.query_cache_enabled) cache_invalidates_.inc();
}

}  // namespace roads::core
