// ResourceOwner: an autonomous organization contributing resources.
//
// The owner keeps the authoritative record store and decides the form
// of sharing (§II, §III-A):
//  * detailed export — the owner controls its attachment server (often
//    hosts it) and ships raw records there;
//  * summary export — the attachment server belongs to someone else,
//    so the owner ships only a condensed summary and answers detailed
//    queries itself, applying its sharing policy per requester.
//
// The sharing policy is the "voluntary sharing" heart of the paper: the
// owner retains final control over which records any given requester
// sees, presenting different views to different parties.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "record/query.h"
#include "record/record.h"
#include "record/schema.h"
#include "sim/delay_space.h"
#include "store/record_store.h"
#include "summary/resource_summary.h"

namespace roads::core {

/// Identity of a querying party, used by sharing policies.
using Principal = std::uint32_t;
constexpr Principal kAnonymous = 0;

/// Returns true when `requester` may see `record`. The default policy
/// shares everything with everyone.
using SharingPolicy =
    std::function<bool(Principal requester, const record::ResourceRecord&)>;

enum class ExportMode : std::uint8_t { kDetailedRecords, kSummaryOnly };

class ResourceOwner {
 public:
  ResourceOwner(record::OwnerId id, sim::NodeId node, record::Schema schema);

  record::OwnerId id() const { return id_; }
  /// Where this owner lives in the delay space (its machine).
  sim::NodeId node() const { return node_; }

  store::RecordStore& store() { return store_; }
  const store::RecordStore& store() const { return store_; }

  void set_policy(SharingPolicy policy) { policy_ = std::move(policy); }

  /// Builds the export summary of the current records.
  summary::ResourceSummary export_summary(
      const summary::SummaryConfig& config) const;

  /// Records `requester` is allowed to see among those matching `q` —
  /// the owner-side query evaluation for summary-only attachments.
  std::vector<record::ResourceRecord> answer(
      Principal requester, const record::Query& q) const;

  /// Count-only variant of answer().
  std::size_t answer_count(Principal requester, const record::Query& q) const;

 private:
  record::OwnerId id_;
  sim::NodeId node_;
  store::RecordStore store_;
  SharingPolicy policy_;
};

}  // namespace roads::core
