#include "roads/owner.h"

namespace roads::core {

ResourceOwner::ResourceOwner(record::OwnerId id, sim::NodeId node,
                             record::Schema schema)
    : id_(id),
      node_(node),
      store_(std::move(schema)),
      policy_([](Principal, const record::ResourceRecord&) { return true; }) {}

summary::ResourceSummary ResourceOwner::export_summary(
    const summary::SummaryConfig& config) const {
  return store_.summarize(config);
}

std::vector<record::ResourceRecord> ResourceOwner::answer(
    Principal requester, const record::Query& q) const {
  std::vector<record::ResourceRecord> out;
  for (const auto id : store_.query(q)) {
    const auto& r = store_.get(id);
    if (policy_(requester, r)) out.push_back(r);
  }
  return out;
}

std::size_t ResourceOwner::answer_count(Principal requester,
                                        const record::Query& q) const {
  std::size_t count = 0;
  for (const auto id : store_.query(q)) {
    if (policy_(requester, store_.get(id))) ++count;
  }
  return count;
}

}  // namespace roads::core
