#include "roads/query_cache.h"

namespace roads::core {

std::shared_ptr<const CachedReply> QueryResultCache::find(std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->reply;
}

std::size_t QueryResultCache::insert(std::uint64_t key, CachedReply reply) {
  if (max_entries_ == 0 || max_bytes_ == 0) return 0;
  auto shared = std::make_shared<const CachedReply>(std::move(reply));
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->reply->bytes();
    it->second->reply = std::move(shared);
    bytes_ += it->second->reply->bytes();
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(shared)});
    bytes_ += lru_.front().reply->bytes();
    index_[key] = lru_.begin();
  }
  std::size_t evicted = 0;
  // Never evict the entry just inserted, even if it alone exceeds the
  // byte bound — an oversized reply is still worth one slot.
  while (lru_.size() > 1 &&
         (lru_.size() > max_entries_ || bytes_ > max_bytes_)) {
    const auto& victim = lru_.back();
    bytes_ -= victim.reply->bytes();
    index_.erase(victim.key);
    lru_.pop_back();
    ++evicted;
  }
  return evicted;
}

void QueryResultCache::clear() {
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void NegativeCache::expire(sim::Time now) {
  while (!order_.empty() && now - order_.front().second > ttl_) {
    index_.erase(order_.front().first);
    order_.pop_front();
  }
}

bool NegativeCache::contains(std::uint64_t key, sim::Time now) {
  expire(now);
  return index_.count(key) > 0;
}

void NegativeCache::insert(std::uint64_t key, sim::Time now) {
  if (max_entries_ == 0) return;
  expire(now);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = now;
    order_.splice(order_.end(), order_, it->second);
    return;
  }
  while (index_.size() >= max_entries_) {
    index_.erase(order_.front().first);
    order_.pop_front();
  }
  order_.emplace_back(key, now);
  index_[key] = std::prev(order_.end());
}

void NegativeCache::clear() {
  order_.clear();
  index_.clear();
}

}  // namespace roads::core
