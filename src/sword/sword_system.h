// SwordSystem: the DHT-based resource-discovery baseline the paper
// compares against (§IV, §V; modeled after Oppenheimer et al.'s SWORD).
//
// Servers are partitioned into one locality-preserving ring per
// searchable attribute. Every resource owner registers every record in
// every ring — the record is routed O(log s) hops to the member whose
// segment covers the record's value for that ring's attribute. A
// multi-dimensional range query is resolved in a single ring (the most
// selective queried attribute): it routes to the segment start and then
// walks successor-to-successor across every member whose segment
// intersects the queried range; each walked member scans its stored
// records against the full query and reports matches to the client.
//
// This reproduces both sides of the paper's tradeoff: r-fold record
// replication with per-update O(log n) routing (heavy update traffic,
// Figs. 4 and 8) versus a compact single-segment query path (light
// query traffic, Fig. 5) whose length grows linearly with system size
// (Fig. 3) and ignores all but one query dimension (Figs. 6-7).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "record/query.h"
#include "record/record.h"
#include "record/schema.h"
#include "sim/delay_space.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sword/locality_hash.h"
#include "sword/ring.h"
#include "util/rng.h"

namespace roads::sword {

struct SwordParams {
  record::Schema schema = record::Schema::uniform_numeric(16);
  std::uint64_t seed = 1;
  sim::DelaySpaceParams delay;
  /// tr: how often dynamic records are re-registered (soft state).
  sim::Time record_refresh_period = sim::seconds(10);
  sim::Time query_processing_delay = sim::ms(1);
  /// Segment-walk hops are acknowledged before the query moves on
  /// (reliable hop-by-hop handoff), costing a round trip per walked
  /// member — the sequential-traversal cost Fig. 3's SWORD curve shows.
  bool acked_segment_walk = true;
};

struct SwordQueryOutcome {
  bool complete = false;
  double latency_ms = 0.0;
  std::uint64_t query_bytes = 0;
  std::size_t servers_contacted = 0;
  std::size_t matching_records = 0;
};

class SwordSystem {
 public:
  SwordSystem(std::size_t servers, SwordParams params);

  std::size_t server_count() const { return server_count_; }
  const record::Schema& schema() const { return params_.schema; }
  std::size_t ring_count() const { return rings_.size(); }
  const Ring& ring(std::size_t attribute) const;
  sim::Network& network() { return network_; }
  sim::Simulator& simulator() { return simulator_; }
  sim::Time record_refresh_period() const {
    return params_.record_refresh_period;
  }

  /// Assigns owner `node`'s record set (replacing any previous one).
  void set_records(sim::NodeId node,
                   std::vector<record::ResourceRecord> records);
  std::size_t total_records() const { return arena_.size(); }

  /// One soft-state refresh round: every owner re-registers every
  /// record in every ring. Runs the simulation to quiescence and
  /// returns the update bytes this round generated.
  std::uint64_t run_registration_round();

  /// Resolves a query issued from `start` (client co-located there),
  /// running the simulation until it completes.
  SwordQueryOutcome run_query(const record::Query& query, sim::NodeId start);

  /// Raw-record bytes stored at `server` across all rings (Table I).
  std::uint64_t stored_bytes(sim::NodeId server) const;
  std::uint64_t max_stored_bytes() const;

 private:
  struct QueryRun;

  /// Picks the ring for a query: the most selective predicate's
  /// attribute (shortest normalized range; equality counts as a point).
  std::size_t choose_ring(const record::Query& query) const;

  void deliver_to_segment(const std::shared_ptr<QueryRun>& run,
                          std::size_t walk_index);

  SwordParams params_;
  util::Rng rng_;
  sim::Simulator simulator_;
  sim::DelaySpace delay_space_;
  sim::Network network_;

  std::size_t server_count_ = 0;
  std::vector<std::size_t> ring_of_attribute_;  // schema attr -> ring index
  std::vector<std::size_t> attribute_of_ring_;  // ring index -> schema attr
  std::vector<Ring> rings_;
  std::vector<LocalityHash> hashes_;  // one per ring

  /// All records live once, here; ring members store indices into it.
  std::vector<record::ResourceRecord> arena_;
  std::map<sim::NodeId, std::vector<std::size_t>> records_of_owner_;
  /// stored_[ring][member_index] = arena indices registered there.
  std::vector<std::vector<std::vector<std::size_t>>> stored_;
};

}  // namespace roads::sword
