#include "sword/ring.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace roads::sword {

Ring::Ring(std::vector<NodeId> members) : members_(std::move(members)) {
  if (members_.empty()) {
    throw std::invalid_argument("Ring: needs at least one member");
  }
}

std::size_t Ring::index_for(double position) const {
  if (position < 0.0 || position >= 1.0) {
    throw std::out_of_range("Ring: position outside [0, 1)");
  }
  const auto index = static_cast<std::size_t>(
      position * static_cast<double>(members_.size()));
  return std::min(index, members_.size() - 1);
}

NodeId Ring::server_for(double position) const {
  return members_[index_for(position)];
}

std::size_t Ring::successor(std::size_t index) const {
  return (index + 1) % members_.size();
}

std::vector<std::size_t> Ring::route(std::size_t from, std::size_t to) const {
  if (from >= members_.size() || to >= members_.size()) {
    throw std::out_of_range("Ring: member index out of range");
  }
  std::vector<std::size_t> path;
  const std::size_t s = members_.size();
  std::size_t cur = from;
  while (cur != to) {
    std::size_t dist = (to + s - cur) % s;
    // Largest power of two <= dist (the best finger).
    std::size_t step = 1;
    while (step * 2 <= dist) step *= 2;
    cur = (cur + step) % s;
    path.push_back(cur);
  }
  return path;
}

std::vector<std::size_t> Ring::segment(double lo_pos, double hi_pos) const {
  if (lo_pos > hi_pos) std::swap(lo_pos, hi_pos);
  const std::size_t first = index_for(lo_pos);
  const std::size_t last = index_for(hi_pos);
  std::vector<std::size_t> out;
  for (std::size_t i = first; i <= last; ++i) out.push_back(i);
  return out;
}

}  // namespace roads::sword
