// One SWORD DHT ring: an ordered set of member servers that partition
// the position space [0, 1) into equal segments, with Chord-style
// binary finger routing between members. The ring is a structural
// object — which member owns a position, what path a lookup takes —
// while message simulation lives in SwordSystem.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/delay_space.h"

namespace roads::sword {

using sim::NodeId;

class Ring {
 public:
  Ring() = default;
  /// `members` in segment order: member j owns [j/s, (j+1)/s).
  explicit Ring(std::vector<NodeId> members);

  std::size_t size() const { return members_.size(); }
  const std::vector<NodeId>& members() const { return members_; }
  NodeId member(std::size_t index) const { return members_.at(index); }

  /// Index of the member owning `position` in [0, 1).
  std::size_t index_for(double position) const;
  NodeId server_for(double position) const;

  /// Successor in ring order (wraps).
  std::size_t successor(std::size_t index) const;

  /// Member indices a Chord-style lookup visits from `from` to `to`,
  /// excluding `from`, including `to`: each hop covers the largest
  /// power-of-two distance not overshooting (O(log s) hops).
  std::vector<std::size_t> route(std::size_t from, std::size_t to) const;

  /// Member indices whose segments intersect [lo_pos, hi_pos] — the
  /// segment a range query must walk, in walk order.
  std::vector<std::size_t> segment(double lo_pos, double hi_pos) const;

 private:
  std::vector<NodeId> members_;
};

}  // namespace roads::sword
