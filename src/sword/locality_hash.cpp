#include "sword/locality_hash.h"

#include <algorithm>
#include <stdexcept>

namespace roads::sword {

namespace {
constexpr double kAlmostOne = 0x1.fffffffffffffp-1;  // largest double < 1
}

LocalityHash::LocalityHash(double domain_min, double domain_max)
    : min_(domain_min), max_(domain_max) {
  if (!(min_ < max_)) {
    throw std::invalid_argument("LocalityHash: empty domain");
  }
}

double LocalityHash::position(double value) const {
  const double clamped = std::clamp(value, min_, max_);
  const double pos = (clamped - min_) / (max_ - min_);
  return std::min(pos, kAlmostOne);
}

std::pair<double, double> LocalityHash::range(double lo, double hi) const {
  if (lo > hi) std::swap(lo, hi);
  return {position(lo), position(hi)};
}

double LocalityHash::position(const std::string& value) const {
  // FNV-1a folded into [0,1); stable across runs.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : value) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return std::min(static_cast<double>(h >> 11) * 0x1.0p-53, kAlmostOne);
}

}  // namespace roads::sword
