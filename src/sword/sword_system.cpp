#include "sword/sword_system.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/unique_function.h"

namespace roads::sword {

namespace {
/// Per-record routing header riding with each registration.
constexpr std::uint64_t kRegistrationHeader = 8;
/// Query reply: header + match count + walk bookkeeping.
constexpr std::uint64_t kReplyBytes = 24;

std::uint64_t msg_query_bytes(const record::Query& q) {
  return q.wire_size() + 1;  // payload + walk-mode byte
}
}  // namespace

SwordSystem::SwordSystem(std::size_t servers, SwordParams params)
    : params_(std::move(params)),
      rng_(params_.seed),
      simulator_(),
      delay_space_(servers, rng_.fork(0x5e1f), params_.delay),
      network_(simulator_, delay_space_, rng_.fork(0x2e70)),
      server_count_(servers) {
  if (servers == 0) {
    throw std::invalid_argument("SwordSystem: needs at least one server");
  }
  const auto searchable = params_.schema.searchable_indices();
  if (searchable.empty()) {
    throw std::invalid_argument("SwordSystem: schema has no searchable attrs");
  }
  ring_of_attribute_.assign(params_.schema.size(), ~std::size_t{0});
  // One ring per searchable attribute; servers are partitioned
  // round-robin so ring i owns servers {j : j mod r == i}.
  const std::size_t r = searchable.size();
  for (std::size_t i = 0; i < r; ++i) {
    const std::size_t attr = searchable[i];
    ring_of_attribute_[attr] = i;
    attribute_of_ring_.push_back(attr);
    std::vector<sim::NodeId> members;
    for (std::size_t j = i; j < servers; j += r) {
      members.push_back(static_cast<sim::NodeId>(j));
    }
    if (members.empty()) {
      // Fewer servers than attributes: fall back to sharing a server.
      members.push_back(static_cast<sim::NodeId>(i % servers));
    }
    rings_.emplace_back(std::move(members));
    const auto& def = params_.schema.at(attr);
    if (def.type == record::AttributeType::kNumeric) {
      hashes_.emplace_back(def.domain_min, def.domain_max);
    } else {
      hashes_.emplace_back();  // categorical: point hash only
    }
  }
  stored_.resize(rings_.size());
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    stored_[i].resize(rings_[i].size());
  }
}

const Ring& SwordSystem::ring(std::size_t attribute) const {
  if (attribute >= ring_of_attribute_.size() ||
      ring_of_attribute_[attribute] == ~std::size_t{0}) {
    throw std::out_of_range("SwordSystem: attribute has no ring");
  }
  return rings_[ring_of_attribute_[attribute]];
}

void SwordSystem::set_records(sim::NodeId node,
                              std::vector<record::ResourceRecord> records) {
  if (node >= server_count_) {
    throw std::out_of_range("SwordSystem: unknown owner node");
  }
  auto& mine = records_of_owner_[node];
  // Replace: mark old slots as tombstones (arena never shrinks; rounds
  // re-register only live records).
  mine.clear();
  for (auto& rec : records) {
    mine.push_back(arena_.size());
    arena_.push_back(std::move(rec));
  }
}

std::uint64_t SwordSystem::run_registration_round() {
  const auto before = network_.meter(sim::Channel::kUpdate).bytes;
  // Soft-state refresh: wipe ring storage, then every owner routes each
  // record into each ring.
  for (auto& ring_store : stored_) {
    for (auto& slot : ring_store) slot.clear();
  }
  for (const auto& [owner, indices] : records_of_owner_) {
    for (std::size_t ring_index = 0; ring_index < rings_.size();
         ++ring_index) {
      const Ring& ring = rings_[ring_index];
      const LocalityHash& hash = hashes_[ring_index];
      const std::size_t attr = attribute_of_ring_[ring_index];

      // Group this owner's records by target member: records that land
      // on the same member travel together (one bulk flow per hop) but
      // still count as per-record messages.
      std::map<std::size_t, std::vector<std::size_t>> groups;
      for (const auto idx : indices) {
        const auto& value = arena_[idx].value(attr);
        const double pos = value.is_numeric() ? hash.position(value.number())
                                              : hash.position(value.category());
        groups[ring.index_for(pos)].push_back(idx);
      }

      // The owner enters the ring at a deterministic access member and
      // fingers its way to each target.
      const std::size_t entry = owner % ring.size();
      for (const auto& [target, group] : groups) {
        std::uint64_t bytes = 0;
        for (const auto idx : group) {
          bytes += arena_[idx].wire_size() + kRegistrationHeader;
        }
        const auto count = static_cast<std::uint64_t>(group.size());

        // Hop owner -> entry member, then finger hops entry -> target.
        std::vector<sim::NodeId> path;
        path.push_back(ring.member(entry));
        for (const auto step : ring.route(entry, target)) {
          path.push_back(ring.member(step));
        }
        sim::NodeId prev = owner;
        for (const auto hop : path) {
          if (hop != prev) {
            network_.send_bulk(prev, hop, count, bytes,
                               sim::Channel::kUpdate, [] {});
          }
          prev = hop;
        }
        // Storage lands at the target regardless of the simulated
        // message timing (registration has no reply path to model).
        auto& slot = stored_[ring_index][target];
        slot.insert(slot.end(), group.begin(), group.end());
      }
    }
  }
  simulator_.run();
  return network_.meter(sim::Channel::kUpdate).bytes - before;
}

std::size_t SwordSystem::choose_ring(const record::Query& query) const {
  if (query.empty()) {
    throw std::invalid_argument("SwordSystem: empty query");
  }
  std::size_t best_ring = ~std::size_t{0};
  double best_length = std::numeric_limits<double>::infinity();
  for (const auto& p : query.predicates()) {
    if (p.attribute >= ring_of_attribute_.size()) continue;
    const std::size_t ring_index = ring_of_attribute_[p.attribute];
    if (ring_index == ~std::size_t{0}) continue;
    double length = 0.0;  // equality: a point
    if (p.kind == record::Predicate::Kind::kRange) {
      const auto& def = params_.schema.at(p.attribute);
      const double width = def.domain_max - def.domain_min;
      const double lo = std::max(p.lo, def.domain_min);
      const double hi = std::min(p.hi, def.domain_max);
      length = std::clamp((hi - lo) / width, 0.0, 1.0);
    }
    if (length < best_length) {
      best_length = length;
      best_ring = ring_index;
    }
  }
  if (best_ring == ~std::size_t{0}) {
    throw std::invalid_argument("SwordSystem: no queried attribute has a ring");
  }
  return best_ring;
}

struct SwordSystem::QueryRun {
  record::Query query;
  sim::NodeId client = 0;
  std::size_t ring_index = 0;
  std::vector<std::size_t> segment;  // walk order of member indices
  sim::Time issued_at = 0;
  sim::Time last_arrival = 0;
  std::size_t servers_contacted = 0;
  std::size_t replies = 0;
  std::size_t matches = 0;
  bool done = false;
};

void SwordSystem::deliver_to_segment(const std::shared_ptr<QueryRun>& run,
                                     std::size_t walk_index) {
  const Ring& ring = rings_[run->ring_index];
  const std::size_t member_index = run->segment[walk_index];
  const sim::NodeId node = ring.member(member_index);
  run->last_arrival = std::max(run->last_arrival, simulator_.now());
  ++run->servers_contacted;

  simulator_.schedule_after(
      params_.query_processing_delay, [this, run, walk_index, node] {
        // Scan locally stored records of this ring against ALL query
        // predicates (SWORD confines routing to one dimension but
        // filters on every one).
        std::size_t local = 0;
        for (const auto idx :
             stored_[run->ring_index][run->segment[walk_index]]) {
          if (run->query.matches(arena_[idx])) ++local;
        }
        // Reply to the client.
        network_.send(node, run->client, kReplyBytes, sim::Channel::kQuery,
                      [this, run, local] {
                        run->matches += local;
                        ++run->replies;
                        if (run->replies == run->segment.size()) {
                          run->done = true;
                        }
                      });
        // Forward along the segment; with acked handoff the forwarder
        // waits one ack leg before the successor takes over.
        if (walk_index + 1 < run->segment.size()) {
          const sim::NodeId next =
              rings_[run->ring_index].member(run->segment[walk_index + 1]);
          const sim::Time ack_delay =
              params_.acked_segment_walk ? network_.latency(node, next) : 0;
          simulator_.schedule_after(ack_delay, [this, run, walk_index, node,
                                                next] {
            network_.send(node, next, msg_query_bytes(run->query),
                          sim::Channel::kQuery, [this, run, walk_index] {
                            deliver_to_segment(run, walk_index + 1);
                          });
          });
        }
      });
}

SwordQueryOutcome SwordSystem::run_query(const record::Query& query,
                                         sim::NodeId start) {
  const auto bytes_before = network_.meter(sim::Channel::kQuery).bytes;

  auto run = std::make_shared<QueryRun>();
  run->query = query;
  run->client = start;
  run->ring_index = choose_ring(query);
  run->issued_at = simulator_.now();
  run->last_arrival = run->issued_at;

  const Ring& ring = rings_[run->ring_index];
  const LocalityHash& hash = hashes_[run->ring_index];
  const std::size_t attr = attribute_of_ring_[run->ring_index];

  // Segment covered by the chosen predicate.
  double lo_pos = 0.0;
  double hi_pos = 0.0;
  for (const auto& p : query.predicates()) {
    if (p.attribute != attr) continue;
    if (p.kind == record::Predicate::Kind::kRange) {
      const auto& def = params_.schema.at(p.attribute);
      std::tie(lo_pos, hi_pos) = hash.range(std::max(p.lo, def.domain_min),
                                            std::min(p.hi, def.domain_max));
    } else {
      lo_pos = hi_pos = hash.position(p.value);
    }
    break;
  }
  run->segment = ring.segment(lo_pos, hi_pos);

  // Client -> entry member -> (finger hops) -> segment start; then the
  // walk takes over.
  const std::size_t entry = start % ring.size();
  std::vector<sim::NodeId> path;
  path.push_back(ring.member(entry));
  for (const auto step : ring.route(entry, run->segment.front())) {
    path.push_back(ring.member(step));
  }

  // Chain the routing hops as events; arrivals at routing servers count
  // toward latency (they are servers the query contacts).
  // The hop body holds itself weakly; the in-flight delivery closure
  // owns the one strong reference (see the server timer idiom), so the
  // chain frees itself once the walk ends or the message is lost.
  auto hop_fn = std::make_shared<util::UniqueFunction<void(std::size_t)>>();
  *hop_fn = [this, run, path,
             weak = std::weak_ptr(hop_fn)](std::size_t i) {
    run->last_arrival = std::max(run->last_arrival, simulator_.now());
    if (i + 1 < path.size()) {
      ++run->servers_contacted;  // intermediate routing server
      auto hop = weak.lock();
      network_.send(path[i], path[i + 1], msg_query_bytes(run->query),
                    sim::Channel::kQuery,
                    [hop = std::move(hop), i] { (*hop)(i + 1); });
    } else {
      deliver_to_segment(run, 0);
    }
  };
  network_.send(start, path.front(), msg_query_bytes(query),
                sim::Channel::kQuery,
                [hop = std::move(hop_fn)] { (*hop)(0); });

  std::size_t guard = 0;
  while (!run->done && simulator_.run_steps(1) > 0) {
    if (++guard > 50'000'000) {
      throw std::runtime_error("SwordSystem: query did not complete");
    }
  }

  SwordQueryOutcome out;
  out.complete = run->done;
  out.latency_ms = sim::to_ms(run->last_arrival - run->issued_at);
  out.query_bytes = network_.meter(sim::Channel::kQuery).bytes - bytes_before;
  out.servers_contacted = run->servers_contacted;
  out.matching_records = run->matches;
  return out;
}

std::uint64_t SwordSystem::stored_bytes(sim::NodeId server) const {
  std::uint64_t total = 0;
  for (std::size_t ring_index = 0; ring_index < rings_.size(); ++ring_index) {
    const auto& members = rings_[ring_index].members();
    for (std::size_t m = 0; m < members.size(); ++m) {
      if (members[m] != server) continue;
      for (const auto idx : stored_[ring_index][m]) {
        total += arena_[idx].wire_size();
      }
    }
  }
  return total;
}

std::uint64_t SwordSystem::max_stored_bytes() const {
  std::uint64_t best = 0;
  for (std::size_t s = 0; s < server_count_; ++s) {
    best = std::max(best, stored_bytes(static_cast<sim::NodeId>(s)));
  }
  return best;
}

}  // namespace roads::sword
