// Locality-preserving hash for SWORD-style range-searchable DHT rings
// (§IV of the ROADS paper, after Oppenheimer et al.). Unlike a
// cryptographic DHT hash, it maps an attribute's value domain onto ring
// positions monotonically, so a value range corresponds to one
// contiguous ring segment — the property that lets a range query walk a
// segment instead of flooding the ring.
#pragma once

#include <cstdint>
#include <string>

namespace roads::sword {

/// Ring positions live in [0, 1).
class LocalityHash {
 public:
  LocalityHash() = default;
  LocalityHash(double domain_min, double domain_max);

  /// Monotone map of a numeric value into [0, 1); values outside the
  /// domain clamp to the ends.
  double position(double value) const;

  /// Positions of a range's ends (lo_pos <= hi_pos).
  std::pair<double, double> range(double lo, double hi) const;

  /// Categorical values hash to a stable (non-locality) position —
  /// equality queries need a point lookup only.
  double position(const std::string& value) const;

 private:
  double min_ = 0.0;
  double max_ = 1.0;
};

}  // namespace roads::sword
